package main

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "regenerate the end-to-end golden files")

// e2eRun is one fixed-seed kubeknots invocation's complete artifact set.
type e2eRun struct {
	tables   []byte // stdout: fig9 + fig10a tables
	trace    []byte // -trace-out decision-audit JSONL
	timeline []byte // -timeline-out Chrome trace_event JSON
	spans    []byte // -spans-out causal pod-lifecycle span JSONL
}

// runE2E executes the pinned end-to-end scenario — seed 3, three simulated
// seconds, fig9 and fig10a with decision-trace and timeline exports —
// through the real CLI path at the given shard count. Seed 3 is chosen so
// the pending queue drains within the horizon: a permanently SLO-rejected
// pod would otherwise be re-traced every 10 ms round and bloat the golden
// trace from kilobytes to megabytes.
func runE2E(t *testing.T, shards int) e2eRun {
	t.Helper()
	tmp := t.TempDir()
	tracePath := filepath.Join(tmp, "trace.jsonl")
	timelinePath := filepath.Join(tmp, "timeline.json")
	spansPath := filepath.Join(tmp, "spans.jsonl")
	var stdout, stderr bytes.Buffer
	args := []string{
		"-parallel", "1",
		"-seed", "3",
		"-horizon", "3s",
		"-shards", fmt.Sprint(shards),
		"-trace-out", tracePath,
		"-timeline-out", timelinePath,
		"-spans-out", spansPath,
		"fig9", "fig10a",
	}
	if code := run(args, &stdout, &stderr); code != 0 {
		t.Fatalf("exit = %d, stderr:\n%s", code, stderr.String())
	}
	readFile := func(path string) []byte {
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	return e2eRun{tables: stdout.Bytes(), trace: readFile(tracePath),
		timeline: readFile(timelinePath), spans: readFile(spansPath)}
}

// goldenFiles maps artifact names to their committed golden paths.
func goldenFiles(r e2eRun) map[string][]byte {
	return map[string][]byte{
		filepath.Join("testdata", "e2e_tables.golden.txt"):    r.tables,
		filepath.Join("testdata", "e2e_trace.golden.jsonl"):   r.trace,
		filepath.Join("testdata", "e2e_timeline.golden.json"): r.timeline,
		filepath.Join("testdata", "e2e_spans.golden.jsonl"):   r.spans,
	}
}

// firstDiff locates the first differing byte and returns a context snippet
// of both sides, so a golden mismatch is diagnosable from the test log.
func firstDiff(want, got []byte) string {
	n := len(want)
	if len(got) < n {
		n = len(got)
	}
	i := 0
	for i < n && want[i] == got[i] {
		i++
	}
	lo := i - 80
	if lo < 0 {
		lo = 0
	}
	clip := func(b []byte) []byte {
		hi := i + 80
		if hi > len(b) {
			hi = len(b)
		}
		if lo > len(b) {
			return nil
		}
		return b[lo:hi]
	}
	return fmt.Sprintf("first divergence at byte %d:\n want …%q…\n  got …%q…", i, clip(want), clip(got))
}

// TestE2EGolden compares the pinned scenario's key artifacts byte-for-byte
// against the committed golden files. Run with -update to regenerate them
// after an intentional behaviour change.
func TestE2EGolden(t *testing.T) {
	r := runE2E(t, 1)
	files := goldenFiles(r)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		for path, data := range files {
			if err := os.WriteFile(path, data, 0o644); err != nil {
				t.Fatal(err)
			}
		}
		t.Log("golden files updated")
		return
	}
	for path, got := range files {
		want, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("%v (run `go test ./cmd/kubeknots -run TestE2EGolden -update` to create golden files)", err)
		}
		if !bytes.Equal(want, got) {
			t.Errorf("%s diverged from golden (%d vs %d bytes)\n%s\nrun with -update if the change is intentional",
				path, len(got), len(want), firstDiff(want, got))
		}
	}
}

// TestE2EShardParity is the end-to-end face of the sharding invariant:
// -shards 8 must reproduce the -shards 1 artifacts byte-for-byte — tables,
// decision traces, and timelines.
func TestE2EShardParity(t *testing.T) {
	serial := runE2E(t, 1)
	sharded := runE2E(t, 8)
	if !bytes.Equal(serial.tables, sharded.tables) {
		t.Errorf("tables diverge between -shards 1 and -shards 8\n%s", firstDiff(serial.tables, sharded.tables))
	}
	if !bytes.Equal(serial.trace, sharded.trace) {
		t.Errorf("decision traces diverge between -shards 1 and -shards 8\n%s", firstDiff(serial.trace, sharded.trace))
	}
	if !bytes.Equal(serial.timeline, sharded.timeline) {
		t.Errorf("timelines diverge between -shards 1 and -shards 8\n%s", firstDiff(serial.timeline, sharded.timeline))
	}
	if !bytes.Equal(serial.spans, sharded.spans) {
		t.Errorf("spans diverge between -shards 1 and -shards 8\n%s", firstDiff(serial.spans, sharded.spans))
	}
}

package main

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

// TestRunErrorPaths drives run() through every flag-parsing and dispatch
// failure: each must exit 2, print a diagnostic to stderr, and write no
// table output.
func TestRunErrorPaths(t *testing.T) {
	cases := []struct {
		name    string
		args    []string
		wantErr string // substring of stderr
	}{
		{"no-args", nil, "usage: kubeknots"},
		{"unknown-flag", []string{"-bogus", "fig1"}, "flag provided but not defined"},
		{"bad-parallel", []string{"-parallel", "many", "fig1"}, "invalid value"},
		{"bad-seeds", []string{"-seeds", "1,x", "fig1"}, `bad seed "x"`},
		{"empty-seeds", []string{"-seeds", " , ", "fig1"}, "no seeds in"},
		{"bad-shards", []string{"-shards", "0", "fig1"}, "-shards must be >= 1"},
		{"negative-shards", []string{"-shards", "-3", "fig1"}, "-shards must be >= 1"},
		{"bad-format", []string{"-format", "xml", "fig1"}, `unknown -format "xml"`},
		{"unknown-experiment", []string{"fig99"}, `unknown experiment "fig99"`},
		{"unknown-among-known", []string{"fig1", "nope"}, `unknown experiment "nope"`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var stdout, stderr bytes.Buffer
			if code := run(tc.args, &stdout, &stderr); code != 2 {
				t.Fatalf("exit = %d, want 2 (stderr: %s)", code, stderr.String())
			}
			if !strings.Contains(stderr.String(), tc.wantErr) {
				t.Fatalf("stderr %q missing %q", stderr.String(), tc.wantErr)
			}
			if stdout.Len() != 0 {
				t.Fatalf("stdout not empty on error: %q", stdout.String())
			}
		})
	}
}

// TestRunDispatch runs the cheap static experiments end to end through the
// real flag/sweep/emit path in every output format.
func TestRunDispatch(t *testing.T) {
	cases := []struct {
		name    string
		args    []string
		wantOut []string // substrings of stdout
	}{
		{"text", []string{"-parallel", "1", "fig1"}, []string{"fig1"}},
		{"json", []string{"-parallel", "1", "-format", "json", "fig1"}, []string{`"id"`, "fig1"}},
		{"csv", []string{"-parallel", "1", "-format", "csv", "fig1"}, []string{"util%", ","}},
		{"multi-experiment", []string{"-parallel", "1", "fig1", "fig4"}, []string{"fig1", "fig4"}},
		{"multi-seed", []string{"-parallel", "1", "-seeds", "2,3", "fig1"}, []string{"fig1"}},
		{"shards-accepted", []string{"-parallel", "1", "-shards", "4", "fig1"}, []string{"fig1"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var stdout, stderr bytes.Buffer
			if code := run(tc.args, &stdout, &stderr); code != 0 {
				t.Fatalf("exit = %d, want 0 (stderr: %s)", code, stderr.String())
			}
			for _, want := range tc.wantOut {
				if !strings.Contains(stdout.String(), want) {
					t.Fatalf("stdout missing %q:\n%s", want, stdout.String())
				}
			}
		})
	}
}

// TestRunStatsGoToStderr keeps the -stats report off stdout, where it would
// corrupt piped table output.
func TestRunStatsGoToStderr(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-parallel", "1", "-stats", "fig1"}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit = %d, want 0 (stderr: %s)", code, stderr.String())
	}
	if !strings.Contains(stderr.String(), "sweep:") {
		t.Fatalf("stderr missing sweep stats: %q", stderr.String())
	}
	if strings.Contains(stdout.String(), "sweep:") {
		t.Fatal("-stats leaked onto stdout")
	}
}

func TestParseSeeds(t *testing.T) {
	cases := []struct {
		in      string
		def     int64
		want    []int64
		wantErr bool
	}{
		{"", 7, []int64{7}, false},
		{"  ", 7, []int64{7}, false},
		{"1", 7, []int64{1}, false},
		{"1,2,3", 7, []int64{1, 2, 3}, false},
		{" 4 , 5 ", 7, []int64{4, 5}, false},
		{"1,,2", 7, []int64{1, 2}, false},
		{"-9", 7, []int64{-9}, false},
		{"a", 7, nil, true},
		{"1,b", 7, nil, true},
		{",", 7, nil, true},
	}
	for _, tc := range cases {
		got, err := parseSeeds(tc.in, tc.def)
		if (err != nil) != tc.wantErr {
			t.Fatalf("parseSeeds(%q): err = %v, wantErr %v", tc.in, err, tc.wantErr)
		}
		if err == nil && !reflect.DeepEqual(got, tc.want) {
			t.Fatalf("parseSeeds(%q) = %v, want %v", tc.in, got, tc.want)
		}
	}
}

package main

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

// TestRunErrorPaths drives run() through every flag-parsing and dispatch
// failure: each must exit 2, print a diagnostic to stderr, and write no
// table output.
func TestRunErrorPaths(t *testing.T) {
	cases := []struct {
		name    string
		args    []string
		wantErr string // substring of stderr
	}{
		{"no-args", nil, "usage: kubeknots"},
		{"unknown-flag", []string{"-bogus", "fig1"}, "flag provided but not defined"},
		{"bad-parallel", []string{"-parallel", "many", "fig1"}, "invalid value"},
		{"bad-seeds", []string{"-seeds", "1,x", "fig1"}, `bad seed "x"`},
		{"empty-seeds", []string{"-seeds", " , ", "fig1"}, "no seeds in"},
		{"bad-shards", []string{"-shards", "0", "fig1"}, "-shards must be >= 1"},
		{"negative-shards", []string{"-shards", "-3", "fig1"}, "-shards must be >= 1"},
		{"bad-format", []string{"-format", "xml", "fig1"}, `unknown -format "xml"`},
		{"unknown-experiment", []string{"fig99"}, `unknown experiment "fig99"`},
		{"unknown-among-known", []string{"fig1", "nope"}, `unknown experiment "nope"`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var stdout, stderr bytes.Buffer
			if code := run(tc.args, &stdout, &stderr); code != 2 {
				t.Fatalf("exit = %d, want 2 (stderr: %s)", code, stderr.String())
			}
			if !strings.Contains(stderr.String(), tc.wantErr) {
				t.Fatalf("stderr %q missing %q", stderr.String(), tc.wantErr)
			}
			if stdout.Len() != 0 {
				t.Fatalf("stdout not empty on error: %q", stdout.String())
			}
		})
	}
}

// TestRunDispatch runs the cheap static experiments end to end through the
// real flag/sweep/emit path in every output format.
func TestRunDispatch(t *testing.T) {
	cases := []struct {
		name    string
		args    []string
		wantOut []string // substrings of stdout
	}{
		{"text", []string{"-parallel", "1", "fig1"}, []string{"fig1"}},
		{"json", []string{"-parallel", "1", "-format", "json", "fig1"}, []string{`"id"`, "fig1"}},
		{"csv", []string{"-parallel", "1", "-format", "csv", "fig1"}, []string{"util%", ","}},
		{"multi-experiment", []string{"-parallel", "1", "fig1", "fig4"}, []string{"fig1", "fig4"}},
		{"multi-seed", []string{"-parallel", "1", "-seeds", "2,3", "fig1"}, []string{"fig1"}},
		{"shards-accepted", []string{"-parallel", "1", "-shards", "4", "fig1"}, []string{"fig1"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var stdout, stderr bytes.Buffer
			if code := run(tc.args, &stdout, &stderr); code != 0 {
				t.Fatalf("exit = %d, want 0 (stderr: %s)", code, stderr.String())
			}
			for _, want := range tc.wantOut {
				if !strings.Contains(stdout.String(), want) {
					t.Fatalf("stdout missing %q:\n%s", want, stdout.String())
				}
			}
		})
	}
}

// TestRunStatsGoToStderr keeps the -stats report off stdout, where it would
// corrupt piped table output.
func TestRunStatsGoToStderr(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-parallel", "1", "-stats", "fig1"}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit = %d, want 0 (stderr: %s)", code, stderr.String())
	}
	if !strings.Contains(stderr.String(), "sweep:") {
		t.Fatalf("stderr missing sweep stats: %q", stderr.String())
	}
	if strings.Contains(stdout.String(), "sweep:") {
		t.Fatal("-stats leaked onto stdout")
	}
}

// TestHarvestFlagsInertWhenDisabled is the determinism satellite: harvest
// tuning flags ride along on every run spec, so with -harvest=false they
// must not change a single output byte.
func TestHarvestFlagsInertWhenDisabled(t *testing.T) {
	base := []string{"-parallel", "1", "-seed", "3", "-horizon", "3s"}
	var plain, tuned bytes.Buffer
	if code := run(append(base, "fig9"), &plain, &bytes.Buffer{}); code != 0 {
		t.Fatalf("plain run exit = %d", code)
	}
	tunedArgs := append([]string{"-harvest=false", "-watermark", "0.5", "-checkpoint-cost", "1s"}, base...)
	if code := run(append(tunedArgs, "fig9"), &tuned, &bytes.Buffer{}); code != 0 {
		t.Fatalf("tuned run exit = %d", code)
	}
	if plain.String() != tuned.String() {
		t.Fatalf("disabled harvest flags changed the output:\n--- plain ---\n%s--- tuned ---\n%s",
			plain.String(), tuned.String())
	}
}

// TestHarvestFlagValidation pins the usage-error exit code for a watermark
// outside (0, 1].
func TestHarvestFlagValidation(t *testing.T) {
	for _, wm := range []string{"0", "1.5", "-0.2"} {
		var stdout, stderr bytes.Buffer
		if code := run([]string{"-watermark", wm, "fig1"}, &stdout, &stderr); code != 2 {
			t.Fatalf("-watermark %s: exit = %d, want 2 (stderr: %s)", wm, code, stderr.String())
		}
		if !strings.Contains(stderr.String(), "-watermark") {
			t.Fatalf("-watermark %s: stderr %q", wm, stderr.String())
		}
	}
}

// TestFigHarvestThroughCLI drives the new experiment family through the real
// flag path with the controller enabled.
func TestFigHarvestThroughCLI(t *testing.T) {
	var stdout, stderr bytes.Buffer
	args := []string{"-parallel", "1", "-horizon", "3s", "-harvest", "-watermark", "0.9", "fig-harvest"}
	if code := run(args, &stdout, &stderr); code != 0 {
		t.Fatalf("exit = %d, stderr: %s", code, stderr.String())
	}
	for _, want := range []string{"fig-harvest", "off", "evict", "resume"} {
		if !strings.Contains(stdout.String(), want) {
			t.Fatalf("stdout missing %q:\n%s", want, stdout.String())
		}
	}
}

func TestParseSeeds(t *testing.T) {
	cases := []struct {
		in      string
		def     int64
		want    []int64
		wantErr bool
	}{
		{"", 7, []int64{7}, false},
		{"  ", 7, []int64{7}, false},
		{"1", 7, []int64{1}, false},
		{"1,2,3", 7, []int64{1, 2, 3}, false},
		{" 4 , 5 ", 7, []int64{4, 5}, false},
		{"1,,2", 7, []int64{1, 2}, false},
		{"-9", 7, []int64{-9}, false},
		{"a", 7, nil, true},
		{"1,b", 7, nil, true},
		{",", 7, nil, true},
	}
	for _, tc := range cases {
		got, err := parseSeeds(tc.in, tc.def)
		if (err != nil) != tc.wantErr {
			t.Fatalf("parseSeeds(%q): err = %v, wantErr %v", tc.in, err, tc.wantErr)
		}
		if err == nil && !reflect.DeepEqual(got, tc.want) {
			t.Fatalf("parseSeeds(%q) = %v, want %v", tc.in, got, tc.want)
		}
	}
}

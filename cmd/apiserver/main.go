// Command apiserver runs the Kube-Knots control plane over HTTP: a
// simulated GPU cluster behind the PP scheduler, accepting JSON pod
// manifests and explicit clock advances, so scenarios can be driven with
// curl and replayed deterministically:
//
//	apiserver -nodes 10 -scheduler pp -addr :8088
//
//	curl -X POST :8088/pods -d '{"name":"j1","workload":{"kind":"rodinia","name":"kmeans"}}'
//	curl -X POST :8088/advance -d '{"ms":60000}'
//	curl :8088/pods/j1
//	curl :8088/nodes
//	curl :8088/qos
package main

import (
	"flag"
	"log"
	"net/http"

	"kubeknots/internal/api"
	"kubeknots/internal/cluster"
	"kubeknots/internal/experiments"
	"kubeknots/internal/k8s"
	"kubeknots/internal/sim"
)

var (
	addr   = flag.String("addr", ":8088", "listen address")
	nodes  = flag.Int("nodes", 10, "GPU nodes in the simulated cluster")
	sched  = flag.String("scheduler", "pp", "scheduler: uniform | resag | cbp | pp")
	hetero = flag.Bool("hetero", false, "use the P100/V100/M40/K80 heterogeneous pool")
	seed   = flag.Int64("seed", 1, "deterministic seed")
)

func main() {
	flag.Parse()
	s, err := experiments.SchedulerByName(*sched)
	if err != nil {
		log.Fatal(err)
	}
	cfg := cluster.DefaultConfig()
	cfg.Nodes = *nodes
	var cl *cluster.Cluster
	if *hetero {
		cl = cluster.NewHeterogeneous(cfg, cluster.HeterogeneousPool())
	} else {
		cl = cluster.New(cfg)
	}
	orch := k8s.NewOrchestrator(sim.NewEngine(*seed), cl, s, k8s.Config{})
	srv := api.NewServer(orch)
	log.Printf("apiserver: %d nodes, %s scheduler, listening on %s", *nodes, s.Name(), *addr)
	log.Fatal(http.ListenAndServe(*addr, srv.Handler()))
}

// Command apiserver runs the Kube-Knots control plane over HTTP: a
// simulated GPU cluster behind the PP scheduler, accepting JSON pod
// manifests and explicit clock advances, so scenarios can be driven with
// curl and replayed deterministically:
//
//	apiserver -nodes 10 -scheduler pp -addr :8088
//
//	curl -X POST :8088/v1/pods -d '{"name":"j1","workload":{"kind":"rodinia","name":"kmeans"}}'
//	curl -X POST :8088/v1/advance -d '{"ms":60000}'
//	curl :8088/v1/pods/j1
//	curl :8088/v1/nodes
//	curl :8088/v1/qos
//	curl :8088/v1/state       # persistence status
//	curl :8088/metrics        # Prometheus text exposition
//	curl :8088/debug/vars     # expvar JSON
//	curl :8088/debug/pprof/   # runtime profiles
//
// The pre-/v1 unversioned paths still answer (with a Deprecation header).
//
// With -state-dir the control plane is durable: every accepted mutation is
// journaled to a write-ahead log before it executes, folded into a snapshot
// every -snapshot-every commands, and replayed on restart — a crash or
// SIGKILL loses nothing, and the replay is byte-verified against the
// snapshot's recorded state. Without -state-dir behaviour is unchanged.
//
// SIGINT/SIGTERM shut the server down gracefully, draining in-flight
// requests (and writing a final snapshot) before exiting.
package main

import (
	"context"
	"errors"
	"expvar"
	"flag"
	"log"
	"net/http"
	"net/http/pprof"
	"os/signal"
	"syscall"
	"time"

	"kubeknots/internal/api"
	"kubeknots/internal/buildinfo"
	"kubeknots/internal/experiments"
	"kubeknots/internal/obs"
	"kubeknots/internal/persist"
)

var (
	addr   = flag.String("addr", ":8088", "listen address")
	nodes  = flag.Int("nodes", 10, "GPU nodes in the simulated cluster")
	sched  = flag.String("scheduler", "pp", "scheduler: uniform | resag | cbp | pp")
	hetero = flag.Bool("hetero", false, "use the P100/V100/M40/K80 heterogeneous pool")
	seed   = flag.Int64("seed", 1, "deterministic seed")
	drain  = flag.Duration("drain", 10*time.Second, "graceful-shutdown drain timeout")
	hspec  = flag.String("harvest", "", `harvest controller spec, e.g. "on,watermark=0.85,checkpoint=true" ("" = disabled; keys: watermark headroom interval checkpoint cost priority max-preempt max-admit sm-ceiling qos-window)`)

	stateDir  = flag.String("state-dir", "", "directory for snapshot + WAL durability (\"\" = no persistence)")
	snapEvery = flag.Int("snapshot-every", 64, "commands between automatic snapshots (with -state-dir)")
)

func main() {
	flag.Parse()
	s, err := experiments.SchedulerByName(*sched)
	if err != nil {
		log.Fatal(err)
	}
	// Construction goes through the same Bootstrap recipe recovery uses, so
	// a journaled run replays through byte-identical initial state.
	boot := persist.Bootstrap{
		Kind:        "apiserver",
		Seed:        *seed,
		Nodes:       *nodes,
		Hetero:      *hetero,
		Scheduler:   *sched,
		HarvestSpec: *hspec,
	}
	orch, hctl, err := persist.Rebuild(boot, s)
	if err != nil {
		log.Fatal(err)
	}
	srv := api.NewServer(orch)
	if hctl != nil {
		srv.SetHarvest(hctl)
	}
	if *stateDir != "" {
		mgr, err := persist.Open(*stateDir, boot, persist.WithSnapshotEvery(*snapEvery))
		if err != nil {
			log.Fatal(err)
		}
		n, err := srv.Recover(mgr)
		if err != nil {
			log.Fatalf("apiserver: recover from %s: %v", *stateDir, err)
		}
		if n > 0 {
			log.Printf("apiserver: recovered %d commands from %s (clock at %v)",
				n, *stateDir, orch.Eng.Now())
		}
	}

	// Wrap the API handler in an outer mux carrying the observability
	// endpoints; the control-plane routes stay untouched under "/".
	mux := http.NewServeMux()
	mux.Handle("/", srv.Handler())
	mux.Handle("/metrics", obs.PromHandler(obs.Default()))
	buildinfo.Publish()
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	// Slowloris hardening: a client trickling its header or body can no
	// longer pin a connection open indefinitely. Handler time (a long
	// /advance) is unbounded on purpose, so no WriteTimeout.
	hsrv := &http.Server{
		Addr:              *addr,
		Handler:           mux,
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	errc := make(chan error, 1)
	go func() { errc <- hsrv.ListenAndServe() }()
	log.Printf("apiserver: %d nodes, %s scheduler, listening on %s", *nodes, s.Name(), *addr)

	select {
	case err := <-errc:
		log.Fatal(err)
	case <-ctx.Done():
		stop()
		log.Printf("apiserver: shutting down (drain %s)", *drain)
		sctx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		if err := hsrv.Shutdown(sctx); err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Fatalf("apiserver: shutdown: %v", err)
		}
		// Fold the journal into a final snapshot so the next start replays
		// nothing. No-op without -state-dir.
		if err := srv.Close(); err != nil {
			log.Fatalf("apiserver: close state: %v", err)
		}
	}
}

// Command knotsd demonstrates the Knots node-monitor daemon: it runs a
// simulated GPU node executing the Rodinia suite, samples the five NVML
// metrics every heartbeat into the node-local time-series store, and serves
// them over HTTP the way the paper's head-node aggregator queries worker
// nodes:
//
//	GET /metrics         latest five-metric sample (JSON)
//	GET /window?ms=5000  the trailing window of every metric (JSON)
//
// The simulation advances in real time scaled by -speed.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http"
	"strconv"
	"sync"
	"time"

	"kubeknots/internal/cluster"
	"kubeknots/internal/knots"
	"kubeknots/internal/sim"
	"kubeknots/internal/workloads"
)

var (
	addr      = flag.String("addr", ":8089", "listen address")
	heartbeat = flag.Duration("heartbeat", 10*time.Millisecond, "sampling period (simulated)")
	speed     = flag.Float64("speed", 10, "simulated seconds per wall second")
)

type daemon struct {
	mu  sync.Mutex
	cl  *cluster.Cluster
	mon *knots.Monitor
	now sim.Time
	seq int
}

func (d *daemon) step(dt sim.Time) {
	d.mu.Lock()
	defer d.mu.Unlock()
	g := d.cl.GPUs()[0]
	hb := sim.Time(heartbeat.Milliseconds())
	if hb <= 0 {
		hb = 10 * sim.Millisecond
	}
	for t := sim.Time(0); t < dt; t += hb {
		// Keep the node busy: cycle the Rodinia suite forever.
		if len(g.Containers()) == 0 {
			names := workloads.RodiniaNames()
			p := workloads.RodiniaProfile(names[d.seq%len(names)])
			d.seq++
			c := &cluster.Container{ID: fmt.Sprintf("%s-%d", p.Name, d.seq), Class: p.Class, Inst: p.NewInstance(nil)}
			if err := g.Place(d.now, c, p.RequestMemMB); err != nil {
				log.Printf("place: %v", err)
			}
		}
		d.cl.Tick(d.now, hb)
		d.mon.Sample(d.now)
		d.now += hb
	}
}

func (d *daemon) metrics(w http.ResponseWriter, _ *http.Request) {
	d.mu.Lock()
	obs := d.cl.GPUs()[0].Obs
	now := d.now
	d.mu.Unlock()
	writeJSON(w, map[string]any{
		"sim_time_ms": int64(now),
		"sm_util":     obs.SMPct,
		"mem_used_mb": obs.MemUsedMB,
		"power_w":     obs.PowerW,
		"tx_mbps":     obs.TxMBps,
		"rx_mbps":     obs.RxMBps,
		"containers":  obs.Containers,
	})
}

func (d *daemon) window(w http.ResponseWriter, r *http.Request) {
	ms, err := strconv.Atoi(r.URL.Query().Get("ms"))
	if err != nil || ms <= 0 {
		ms = 5000
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	g := d.cl.GPUs()[0]
	out := make(map[string][]float64, len(knots.Metrics))
	for _, m := range knots.Metrics {
		out[m] = d.mon.Series(g, m, d.now, sim.Time(ms))
	}
	writeJSON(w, out)
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

func main() {
	flag.Parse()
	cfg := cluster.DefaultConfig()
	cfg.Nodes = 1
	cl := cluster.New(cfg)
	d := &daemon{cl: cl, mon: knots.NewMonitor(cl, 1<<18)}

	go func() {
		const wallTick = 100 * time.Millisecond
		for range time.Tick(wallTick) {
			d.step(sim.Time(float64(wallTick.Milliseconds()) * *speed))
		}
	}()

	http.HandleFunc("/metrics", d.metrics)
	http.HandleFunc("/window", d.window)
	log.Printf("knotsd: simulated P100 node on %s (x%.0f time)", *addr, *speed)
	log.Fatal(http.ListenAndServe(*addr, nil))
}

// Command knotsd demonstrates the Knots node-monitor daemon: it runs a
// simulated GPU node executing the Rodinia suite, samples the five NVML
// metrics every heartbeat into the node-local time-series store, and serves
// them over HTTP the way the paper's head-node aggregator queries worker
// nodes:
//
//	GET /metrics         Prometheus text exposition (registry + live gauges)
//	GET /metrics.json    latest five-metric sample (JSON)
//	GET /window?ms=5000  the trailing window of every metric (JSON)
//	GET /debug/vars      expvar JSON
//	GET /debug/pprof/    runtime profiles
//
// The simulation advances in real time scaled by -speed. SIGINT/SIGTERM
// shut the server down gracefully, draining in-flight requests.
//
// With -state-dir the daemon checkpoints its telemetry state every
// -snapshot-every of wall time and on shutdown: the simulated clock, the
// placement sequence, and the full node-local time-series rings survive a
// restart (the in-flight workload itself restarts — knotsd is wall-driven,
// so its event stream is not replayable the way the apiserver's is, and
// the rings are the durable observable).
package main

import (
	"context"
	"encoding/json"
	"errors"
	"expvar"
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"
	"os/signal"
	"strconv"
	"sync"
	"syscall"
	"time"

	"kubeknots/internal/buildinfo"
	"kubeknots/internal/cluster"
	"kubeknots/internal/knots"
	"kubeknots/internal/obs"
	"kubeknots/internal/persist"
	"kubeknots/internal/sim"
	"kubeknots/internal/workloads"
)

var (
	addr      = flag.String("addr", ":8089", "listen address")
	heartbeat = flag.Duration("heartbeat", 10*time.Millisecond, "sampling period (simulated)")
	speed     = flag.Float64("speed", 10, "simulated seconds per wall second")
	drain     = flag.Duration("drain", 10*time.Second, "graceful-shutdown drain timeout")
	stateDir  = flag.String("state-dir", "", "directory for telemetry snapshots (\"\" = no persistence)")
	snapEvery = flag.Duration("snapshot-every", 30*time.Second, "wall time between snapshots (with -state-dir)")
)

// Live node gauges mirroring the NVML metrics the monitor samples; they sit
// beside the knots_* counters in the same registry so one /metrics scrape
// carries both the event counters and the current device state.
var (
	gSimTime = obs.Default().Gauge("knotsd_sim_time_ms",
		"Current simulated time on the node (ms).")
	gSMUtil = obs.Default().GaugeVec("knotsd_gpu_sm_util_pct",
		"Latest sampled SM utilization per device (percent).", "gpu")
	gMemUsed = obs.Default().GaugeVec("knotsd_gpu_mem_used_mb",
		"Latest sampled device memory in use (MB).", "gpu")
	gPower = obs.Default().GaugeVec("knotsd_gpu_power_w",
		"Latest sampled board power draw (watts).", "gpu")
	gContainers = obs.Default().GaugeVec("knotsd_gpu_containers",
		"Containers currently resident on the device.", "gpu")
)

type daemon struct {
	mu  sync.Mutex
	cl  *cluster.Cluster
	mon *knots.Monitor
	now sim.Time
	seq int
}

func (d *daemon) step(dt sim.Time) {
	d.mu.Lock()
	defer d.mu.Unlock()
	g := d.cl.GPUs()[0]
	hb := sim.Time(heartbeat.Milliseconds())
	if hb <= 0 {
		hb = 10 * sim.Millisecond
	}
	for t := sim.Time(0); t < dt; t += hb {
		// Keep the node busy: cycle the Rodinia suite forever.
		if len(g.Containers()) == 0 {
			names := workloads.RodiniaNames()
			p := workloads.RodiniaProfile(names[d.seq%len(names)])
			d.seq++
			c := &cluster.Container{ID: fmt.Sprintf("%s-%d", p.Name, d.seq), Class: p.Class, Inst: p.NewInstance(nil)}
			if err := g.Place(d.now, c, p.RequestMemMB); err != nil {
				log.Printf("place: %v", err)
			}
		}
		d.cl.Tick(d.now, hb)
		d.mon.Sample(d.now)
		d.now += hb
	}
	gSimTime.Set(float64(d.now))
	for _, g := range d.cl.GPUs() {
		id := g.ID()
		gSMUtil.With(id).Set(g.Obs.SMPct)
		gMemUsed.With(id).Set(g.Obs.MemUsedMB)
		gPower.With(id).Set(g.Obs.PowerW)
		gContainers.With(id).Set(float64(g.Obs.Containers))
	}
}

func (d *daemon) metricsJSON(w http.ResponseWriter, _ *http.Request) {
	d.mu.Lock()
	obs := d.cl.GPUs()[0].Obs
	now := d.now
	d.mu.Unlock()
	writeJSON(w, map[string]any{
		"sim_time_ms": int64(now),
		"sm_util":     obs.SMPct,
		"mem_used_mb": obs.MemUsedMB,
		"power_w":     obs.PowerW,
		"tx_mbps":     obs.TxMBps,
		"rx_mbps":     obs.RxMBps,
		"containers":  obs.Containers,
	})
}

func (d *daemon) window(w http.ResponseWriter, r *http.Request) {
	ms, err := strconv.Atoi(r.URL.Query().Get("ms"))
	if err != nil || ms <= 0 {
		ms = 5000
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	g := d.cl.GPUs()[0]
	out := make(map[string][]float64, len(knots.Metrics))
	for _, m := range knots.Metrics {
		out[m] = d.mon.Series(g, m, d.now, sim.Time(ms))
	}
	writeJSON(w, out)
}

// knotsdBoot is the daemon's construction recipe; a state dir written by a
// different knotsd shape (or by the apiserver) is refused on load.
func knotsdBoot() persist.Bootstrap {
	return persist.Bootstrap{Kind: "knotsd", Nodes: 1}
}

// captureState freezes the daemon's durable view: clock, placement
// sequence, and every node-local ring.
func (d *daemon) captureState() *persist.State {
	d.mu.Lock()
	defer d.mu.Unlock()
	st := &persist.State{ClockMS: int64(d.now), DaemonSeq: uint64(d.seq)}
	db := d.mon.NodeDB(0)
	for _, name := range db.SeriesNames() {
		st.Series = append(st.Series, persist.SeriesState{
			Node:   0,
			Name:   name,
			Points: db.Window(name, 0, sim.Time(1<<62)),
		})
	}
	return st
}

// restoreState replays a snapshot into the freshly-built daemon: the rings
// are re-appended point by point (the tsdb is append-only, so this is the
// exact durable content), and the clock and sequence resume where they
// stopped.
func (d *daemon) restoreState(st *persist.State) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.now = sim.Time(st.ClockMS)
	d.seq = int(st.DaemonSeq)
	db := d.mon.NodeDB(0)
	for _, s := range st.Series {
		for _, p := range s.Points {
			db.Append(s.Name, p.At, p.Value)
		}
	}
}

// saveSnapshot writes the daemon's current state to the state dir.
func (d *daemon) saveSnapshot(store *persist.Store) error {
	_, err := store.WriteSnapshot(&persist.Snapshot{Boot: knotsdBoot(), State: d.captureState()})
	return err
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

// debugMux mounts expvar and pprof on mux under /debug/. Registering the
// pprof handlers explicitly keeps the daemon off http.DefaultServeMux.
func debugMux(mux *http.ServeMux) {
	buildinfo.Publish()
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
}

func main() {
	flag.Parse()
	cfg := cluster.DefaultConfig()
	cfg.Nodes = 1
	cl := cluster.New(cfg)
	d := &daemon{cl: cl, mon: knots.NewMonitor(cl, 1<<18)}

	var store *persist.Store
	if *stateDir != "" {
		var err error
		if store, err = persist.OpenStore(*stateDir); err != nil {
			log.Fatal(err)
		}
		snap, err := store.LoadSnapshot()
		if err != nil {
			log.Fatalf("knotsd: load snapshot: %v", err)
		}
		if snap != nil {
			if !snap.Boot.Equal(knotsdBoot()) {
				log.Fatalf("knotsd: state dir %s was written by a different daemon shape", *stateDir)
			}
			d.restoreState(snap.State)
			log.Printf("knotsd: restored %d series from %s (clock at %v)",
				len(snap.State.Series), *stateDir, d.now)
		}
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	// tickDone lets shutdown join this goroutine before writing the final
	// snapshot — otherwise a periodic saveSnapshot could still be racing
	// writeSnapshotFile against the same temp path.
	tickDone := make(chan struct{})
	go func() {
		defer close(tickDone)
		ticker := time.NewTicker(100 * time.Millisecond)
		defer ticker.Stop()
		var lastSnap time.Time
		for {
			select {
			case <-ctx.Done():
				return
			case now := <-ticker.C:
				d.step(sim.Time(100 * *speed))
				if store != nil && now.Sub(lastSnap) >= *snapEvery {
					if err := d.saveSnapshot(store); err != nil {
						log.Printf("knotsd: snapshot: %v", err)
					}
					lastSnap = now
				}
			}
		}
	}()

	mux := http.NewServeMux()
	mux.Handle("/metrics", obs.PromHandler(obs.Default()))
	mux.HandleFunc("/metrics.json", d.metricsJSON)
	mux.HandleFunc("/window", d.window)
	debugMux(mux)

	// Slowloris hardening: bound header/body reads and idle keep-alives so a
	// trickling client cannot pin connections open.
	srv := &http.Server{
		Addr:              *addr,
		Handler:           mux,
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	log.Printf("knotsd: simulated P100 node on %s (x%.0f time)", *addr, *speed)

	select {
	case err := <-errc:
		log.Fatal(err)
	case <-ctx.Done():
		stop()
		log.Printf("knotsd: shutting down (drain %s)", *drain)
		sctx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		if err := srv.Shutdown(sctx); err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Fatalf("knotsd: shutdown: %v", err)
		}
		<-tickDone
		if store != nil {
			if err := d.saveSnapshot(store); err != nil {
				log.Fatalf("knotsd: final snapshot: %v", err)
			}
		}
	}
}

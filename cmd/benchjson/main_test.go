package main

import (
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: kubeknots
cpu: Intel(R) Xeon(R)
BenchmarkFig9-8                 	       1	1234567890 ns/op	        85.00 PP-mix1-p90-util	51234567 B/op	  423456 allocs/op
BenchmarkSpearman-8             	  501883	      2329 ns/op	    4096 B/op	       3 allocs/op
BenchmarkAR1Forecast            	  902210	      1321 ns/op
PASS
ok  	kubeknots	95.123s
`

func TestParseBench(t *testing.T) {
	got, err := parseBench(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("parsed %d results, want 3: %+v", len(got), got)
	}
	// Sorted by name, GOMAXPROCS suffix stripped.
	if got[0].Name != "BenchmarkAR1Forecast" || got[1].Name != "BenchmarkFig9" || got[2].Name != "BenchmarkSpearman" {
		t.Fatalf("names = %q %q %q", got[0].Name, got[1].Name, got[2].Name)
	}
	fig9 := got[1]
	if fig9.Iterations != 1 || fig9.NsPerOp != 1234567890 || fig9.BytesPerOp != 51234567 || fig9.AllocsPerOp != 423456 {
		t.Fatalf("fig9 = %+v", fig9)
	}
	if v := fig9.Metrics["PP-mix1-p90-util"]; v != 85 {
		t.Fatalf("custom metric = %v, want 85", v)
	}
	sp := got[2]
	if sp.Iterations != 501883 || sp.NsPerOp != 2329 || len(sp.Metrics) != 0 {
		t.Fatalf("spearman = %+v", sp)
	}
}

func TestParseBenchRejectsMalformedValue(t *testing.T) {
	_, err := parseBench(strings.NewReader("BenchmarkX-4 10 abc ns/op\n"))
	if err == nil {
		t.Fatal("want error for non-numeric value")
	}
}

func TestTrimProcSuffix(t *testing.T) {
	cases := map[string]string{
		"BenchmarkFig9-8":       "BenchmarkFig9",
		"BenchmarkFig9":         "BenchmarkFig9",
		"BenchmarkFig10a-16":    "BenchmarkFig10a",
		"BenchmarkAR1-Forecast": "BenchmarkAR1-Forecast",
	}
	for in, want := range cases {
		if got := trimProcSuffix(in); got != want {
			t.Errorf("trimProcSuffix(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestCompareFlagsRegressions(t *testing.T) {
	base := []Result{
		{Name: "BenchmarkA", NsPerOp: 100, AllocsPerOp: 1000},
		{Name: "BenchmarkB", NsPerOp: 200, AllocsPerOp: 10},
		{Name: "BenchmarkRetired", NsPerOp: 50},
	}
	fresh := []Result{
		{Name: "BenchmarkA", NsPerOp: 110, AllocsPerOp: 2000}, // allocs doubled
		{Name: "BenchmarkB", NsPerOp: 190, AllocsPerOp: 10},
		{Name: "BenchmarkNew", NsPerOp: 5}, // not in baseline: skipped
	}
	deltas := compare(base, fresh, nil)
	if len(deltas) != 4 {
		t.Fatalf("got %d deltas, want 4: %+v", len(deltas), deltas)
	}
	var worst delta
	for _, d := range deltas {
		if d.Ratio > worst.Ratio {
			worst = d
		}
	}
	if worst.Name != "BenchmarkA" || worst.Measure != "allocs/op" || worst.Ratio != 1.0 {
		t.Fatalf("worst delta = %+v", worst)
	}
}

func TestCompareMatchFilter(t *testing.T) {
	base := []Result{
		{Name: "BenchmarkPPScheduleRound", NsPerOp: 100},
		{Name: "BenchmarkFig9", NsPerOp: 100},
	}
	fresh := []Result{
		{Name: "BenchmarkPPScheduleRound", NsPerOp: 500},
		{Name: "BenchmarkFig9", NsPerOp: 500},
	}
	deltas := compare(base, fresh, []string{"ScheduleRound"})
	if len(deltas) != 1 || deltas[0].Name != "BenchmarkPPScheduleRound" {
		t.Fatalf("match filter leaked: %+v", deltas)
	}
}

func TestRunDiffThreshold(t *testing.T) {
	base := []Result{{Name: "BenchmarkA", NsPerOp: 100}}
	var sb strings.Builder
	if runDiff(&sb, base, []Result{{Name: "BenchmarkA", NsPerOp: 120}}, nil, 0.25) {
		t.Fatal("20% slower must pass a 25% threshold")
	}
	sb.Reset()
	if !runDiff(&sb, base, []Result{{Name: "BenchmarkA", NsPerOp: 130}}, nil, 0.25) {
		t.Fatal("30% slower must fail a 25% threshold")
	}
	if !strings.Contains(sb.String(), "!") {
		t.Fatalf("regressed row should be marked: %q", sb.String())
	}
	// Improvements never fail, no matter how large.
	if runDiff(&sb, base, []Result{{Name: "BenchmarkA", NsPerOp: 1}}, nil, 0.25) {
		t.Fatal("speedup must never fail the gate")
	}
}

package main

import (
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: kubeknots
cpu: Intel(R) Xeon(R)
BenchmarkFig9-8                 	       1	1234567890 ns/op	        85.00 PP-mix1-p90-util	51234567 B/op	  423456 allocs/op
BenchmarkSpearman-8             	  501883	      2329 ns/op	    4096 B/op	       3 allocs/op
BenchmarkAR1Forecast            	  902210	      1321 ns/op
PASS
ok  	kubeknots	95.123s
`

func TestParseBench(t *testing.T) {
	got, err := parseBench(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("parsed %d results, want 3: %+v", len(got), got)
	}
	// Sorted by name, GOMAXPROCS suffix stripped.
	if got[0].Name != "BenchmarkAR1Forecast" || got[1].Name != "BenchmarkFig9" || got[2].Name != "BenchmarkSpearman" {
		t.Fatalf("names = %q %q %q", got[0].Name, got[1].Name, got[2].Name)
	}
	fig9 := got[1]
	if fig9.Iterations != 1 || fig9.NsPerOp != 1234567890 || fig9.BytesPerOp != 51234567 || fig9.AllocsPerOp != 423456 {
		t.Fatalf("fig9 = %+v", fig9)
	}
	if v := fig9.Metrics["PP-mix1-p90-util"]; v != 85 {
		t.Fatalf("custom metric = %v, want 85", v)
	}
	sp := got[2]
	if sp.Iterations != 501883 || sp.NsPerOp != 2329 || len(sp.Metrics) != 0 {
		t.Fatalf("spearman = %+v", sp)
	}
}

func TestParseBenchRejectsMalformedValue(t *testing.T) {
	_, err := parseBench(strings.NewReader("BenchmarkX-4 10 abc ns/op\n"))
	if err == nil {
		t.Fatal("want error for non-numeric value")
	}
}

func TestTrimProcSuffix(t *testing.T) {
	cases := map[string]string{
		"BenchmarkFig9-8":       "BenchmarkFig9",
		"BenchmarkFig9":         "BenchmarkFig9",
		"BenchmarkFig10a-16":    "BenchmarkFig10a",
		"BenchmarkAR1-Forecast": "BenchmarkAR1-Forecast",
	}
	for in, want := range cases {
		if got := trimProcSuffix(in); got != want {
			t.Errorf("trimProcSuffix(%q) = %q, want %q", in, got, want)
		}
	}
}

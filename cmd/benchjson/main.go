// Command benchjson converts `go test -bench` text output into a stable JSON
// document, so benchmark baselines can be committed and diffed:
//
//	go test -run '^$' -bench . -benchtime 1x -benchmem | benchjson > BENCH_baseline.json
//
// Each benchmark becomes one object with the standard measurements broken out
// (ns/op, B/op, allocs/op) and every custom b.ReportMetric value under
// "metrics". Results are sorted by name and carry no timestamps or host
// details, so re-running on the same machine produces a minimal diff.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Result is one parsed benchmark line.
type Result struct {
	Name        string             `json:"name"`
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  float64            `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64            `json:"allocs_per_op,omitempty"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

// parseBench reads `go test -bench` output and returns the benchmark results
// sorted by name. Non-benchmark lines (PASS, ok, goos, ...) are ignored.
func parseBench(r io.Reader) ([]Result, error) {
	var out []Result
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 4 {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue // "Benchmark..." prose, not a result line
		}
		res := Result{Name: trimProcSuffix(fields[0]), Iterations: iters}
		// The rest of the line is (value, unit) pairs.
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("bad value %q in %q", fields[i], line)
			}
			switch unit := fields[i+1]; unit {
			case "ns/op":
				res.NsPerOp = v
			case "B/op":
				res.BytesPerOp = v
			case "allocs/op":
				res.AllocsPerOp = v
			default:
				if res.Metrics == nil {
					res.Metrics = map[string]float64{}
				}
				res.Metrics[unit] = v
			}
		}
		out = append(out, res)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out, nil
}

// trimProcSuffix drops the -GOMAXPROCS suffix (BenchmarkFig9-8 → BenchmarkFig9)
// so baselines compare across machines with different core counts.
func trimProcSuffix(name string) string {
	i := strings.LastIndexByte(name, '-')
	if i < 0 {
		return name
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return name
	}
	return name[:i]
}

func main() {
	results, err := parseBench(os.Stdin)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	if len(results) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines on stdin")
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(results); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
}

// Command benchjson converts `go test -bench` text output into a stable JSON
// document, so benchmark baselines can be committed and diffed:
//
//	go test -run '^$' -bench . -benchtime 1x -benchmem | benchjson > BENCH_baseline.json
//
// Each benchmark becomes one object with the standard measurements broken out
// (ns/op, B/op, allocs/op) and every custom b.ReportMetric value under
// "metrics". Results are sorted by name and carry no timestamps or host
// details, so re-running on the same machine produces a minimal diff.
//
// With -baseline, benchjson instead diffs the fresh run against a committed
// baseline and exits non-zero when ns/op or allocs/op regresses by more than
// -threshold (a fraction; 0.25 = 25%):
//
//	go test -run '^$' -bench . -benchtime 1x -benchmem |
//	    benchjson -baseline BENCH_baseline.json -threshold 0.25 -match Schedule,Ablation
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Result is one parsed benchmark line.
type Result struct {
	Name        string             `json:"name"`
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  float64            `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64            `json:"allocs_per_op,omitempty"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

// parseBench reads `go test -bench` output and returns the benchmark results
// sorted by name. Non-benchmark lines (PASS, ok, goos, ...) are ignored.
func parseBench(r io.Reader) ([]Result, error) {
	var out []Result
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 4 {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue // "Benchmark..." prose, not a result line
		}
		res := Result{Name: trimProcSuffix(fields[0]), Iterations: iters}
		// The rest of the line is (value, unit) pairs.
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("bad value %q in %q", fields[i], line)
			}
			switch unit := fields[i+1]; unit {
			case "ns/op":
				res.NsPerOp = v
			case "B/op":
				res.BytesPerOp = v
			case "allocs/op":
				res.AllocsPerOp = v
			default:
				if res.Metrics == nil {
					res.Metrics = map[string]float64{}
				}
				res.Metrics[unit] = v
			}
		}
		out = append(out, res)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out, nil
}

// trimProcSuffix drops the -GOMAXPROCS suffix (BenchmarkFig9-8 → BenchmarkFig9)
// so baselines compare across machines with different core counts.
func trimProcSuffix(name string) string {
	i := strings.LastIndexByte(name, '-')
	if i < 0 {
		return name
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return name
	}
	return name[:i]
}

// delta is one benchmark's fresh-vs-baseline comparison on a single measure.
type delta struct {
	Name    string
	Measure string
	Base    float64
	Fresh   float64
	Ratio   float64 // fresh/base − 1; positive = regression
}

// compare diffs fresh results against the baseline on ns/op and allocs/op.
// Only names containing one of the match substrings are compared (all names
// when match is empty); benchmarks missing from either side are skipped, so
// adding or retiring a benchmark never fails the gate. A zero baseline value
// is skipped too — there is no meaningful ratio against zero.
func compare(base, fresh []Result, match []string) []delta {
	byName := make(map[string]Result, len(base))
	for _, r := range base {
		byName[r.Name] = r
	}
	var out []delta
	for _, f := range fresh {
		if !matches(f.Name, match) {
			continue
		}
		b, ok := byName[f.Name]
		if !ok {
			continue
		}
		if b.NsPerOp > 0 {
			out = append(out, delta{f.Name, "ns/op", b.NsPerOp, f.NsPerOp, f.NsPerOp/b.NsPerOp - 1})
		}
		if b.AllocsPerOp > 0 {
			out = append(out, delta{f.Name, "allocs/op", b.AllocsPerOp, f.AllocsPerOp, f.AllocsPerOp/b.AllocsPerOp - 1})
		}
	}
	return out
}

func matches(name string, match []string) bool {
	if len(match) == 0 {
		return true
	}
	for _, m := range match {
		if strings.Contains(name, m) {
			return true
		}
	}
	return false
}

// runDiff prints the comparison table to w and reports whether any measure
// regressed past threshold.
func runDiff(w io.Writer, base, fresh []Result, match []string, threshold float64) bool {
	deltas := compare(base, fresh, match)
	var failed bool
	for _, d := range deltas {
		mark := " "
		if d.Ratio > threshold {
			mark = "!"
			failed = true
		}
		fmt.Fprintf(w, "%s %-44s %-9s %14.1f -> %14.1f  %+7.1f%%\n",
			mark, d.Name, d.Measure, d.Base, d.Fresh, d.Ratio*100)
	}
	if len(deltas) == 0 {
		fmt.Fprintln(w, "benchjson: no overlapping benchmarks to compare")
	}
	return failed
}

func readBaseline(path string) ([]Result, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var out []Result
	if err := json.NewDecoder(f).Decode(&out); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return out, nil
}

func main() {
	baseline := flag.String("baseline", "", "baseline JSON to diff against instead of emitting JSON")
	threshold := flag.Float64("threshold", 0.25, "max allowed fractional regression in ns/op or allocs/op")
	match := flag.String("match", "", "comma-separated substrings selecting which benchmarks to gate (empty = all)")
	flag.Parse()

	results, err := parseBench(os.Stdin)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	if len(results) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines on stdin")
		os.Exit(1)
	}

	if *baseline != "" {
		base, err := readBaseline(*baseline)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
			os.Exit(1)
		}
		var sel []string
		if *match != "" {
			sel = strings.Split(*match, ",")
		}
		if runDiff(os.Stdout, base, results, sel, *threshold) {
			fmt.Fprintf(os.Stderr, "benchjson: regression beyond %.0f%% threshold\n", *threshold*100)
			os.Exit(1)
		}
		return
	}

	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(results); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
}

package main

import (
	"bytes"
	"strings"
	"testing"
)

// gen invokes the CLI with a small trace and captures both streams.
func gen(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	var stdout, stderr bytes.Buffer
	code := run(args, &stdout, &stderr)
	return code, stdout.String(), stderr.String()
}

// TestTracegenCSVShape pins the output contract: a header line plus one CSV
// row per task, every row with the header's column count.
func TestTracegenCSVShape(t *testing.T) {
	code, out, errOut := gen(t, "-batch", "40", "-lc", "25", "-hours", "0.5")
	if code != 0 {
		t.Fatalf("exit = %d, stderr %q", code, errOut)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 1+40+25 {
		t.Fatalf("lines = %d, want header + 65 tasks", len(lines))
	}
	cols := len(strings.Split(lines[0], ","))
	if cols < 4 {
		t.Fatalf("header has %d columns: %q", cols, lines[0])
	}
	for i, line := range lines[1:] {
		if got := len(strings.Split(line, ",")); got != cols {
			t.Fatalf("row %d has %d columns, header has %d: %q", i+1, got, cols, line)
		}
	}
	if errOut != "" {
		t.Fatalf("stderr not empty without -fleet: %q", errOut)
	}
}

// TestTracegenDeterministic pins seed behaviour: same seed, same bytes;
// different seed, different bytes.
func TestTracegenDeterministic(t *testing.T) {
	_, a, _ := gen(t, "-seed", "7", "-batch", "30", "-lc", "20", "-hours", "0.5")
	_, b, _ := gen(t, "-seed", "7", "-batch", "30", "-lc", "20", "-hours", "0.5")
	if a != b {
		t.Fatal("same seed produced different traces")
	}
	_, c, _ := gen(t, "-seed", "8", "-batch", "30", "-lc", "20", "-hours", "0.5")
	if a == c {
		t.Fatal("different seeds produced identical traces")
	}
}

// TestTracegenFleetLine pins the -fleet summary: stats go to stderr (the
// CSV on stdout must stay machine-readable) and name the machine count.
func TestTracegenFleetLine(t *testing.T) {
	code, out, errOut := gen(t, "-batch", "40", "-lc", "25", "-hours", "0.5", "-fleet", "13")
	if code != 0 {
		t.Fatalf("exit = %d, stderr %q", code, errOut)
	}
	if !strings.HasPrefix(errOut, "fleet: 13 machines") {
		t.Fatalf("fleet line = %q", errOut)
	}
	if strings.Contains(out, "fleet:") {
		t.Fatal("fleet stats leaked onto stdout")
	}
}

// TestTracegenBadFlag pins the usage exit code.
func TestTracegenBadFlag(t *testing.T) {
	code, out, errOut := gen(t, "-hours", "lots")
	if code != 2 {
		t.Fatalf("exit = %d, want 2", code)
	}
	if out != "" {
		t.Fatalf("stdout not empty on flag error: %q", out)
	}
	if !strings.Contains(errOut, "invalid value") {
		t.Fatalf("stderr = %q", errOut)
	}
}

// Command tracegen emits a synthetic Alibaba-style cluster trace (the
// Section II-B substitute) as CSV on stdout: one row per task with arrival,
// kind, duration, and the per-container utilization summaries behind
// Fig. 2b. With -fleet, a machine-assignment summary is printed to stderr
// (the paper's analysis spans 1300 machines).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"kubeknots/internal/trace"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run executes one CLI invocation and returns its exit code. main is a thin
// wrapper so tests can drive the flag and output paths directly.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("tracegen", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		seed  = fs.Int64("seed", 1, "deterministic seed")
		batch = fs.Int("batch", 12951, "number of batch jobs")
		lc    = fs.Int("lc", 11089, "number of latency-critical containers")
		hours = fs.Float64("hours", 12, "trace horizon in hours")
		fleet = fs.Int("fleet", 0, "assign tasks to this many machines and report fleet stats (0 = off)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	cfg := trace.Config{
		BatchJobs:    *batch,
		LCContainers: *lc,
		Horizon:      trace.HorizonFromHours(*hours),
	}
	tr := trace.Generate(*seed, cfg)
	if err := tr.WriteCSV(stdout); err != nil {
		fmt.Fprintln(stderr, "tracegen:", err)
		return 1
	}
	if *fleet > 0 {
		a := tr.AssignMachines(*fleet, *seed)
		st := trace.FleetStats(tr.MachineLoadSeries(a, 0))
		fmt.Fprintf(stderr, "fleet: %d machines, mean load %.2f tasks, p99 %.0f, idle fraction %.2f\n",
			a.Machines, st.MeanLoad, st.P99Load, st.IdleFraction)
	}
	return 0
}

// Command tracegen emits a synthetic Alibaba-style cluster trace (the
// Section II-B substitute) as CSV on stdout: one row per task with arrival,
// kind, duration, and the per-container utilization summaries behind
// Fig. 2b. With -fleet, a machine-assignment summary is printed to stderr
// (the paper's analysis spans 1300 machines).
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"kubeknots/internal/trace"
)

var (
	seed  = flag.Int64("seed", 1, "deterministic seed")
	batch = flag.Int("batch", 12951, "number of batch jobs")
	lc    = flag.Int("lc", 11089, "number of latency-critical containers")
	hours = flag.Float64("hours", 12, "trace horizon in hours")
	fleet = flag.Int("fleet", 0, "assign tasks to this many machines and report fleet stats (0 = off)")
)

func main() {
	flag.Parse()
	cfg := trace.Config{
		BatchJobs:    *batch,
		LCContainers: *lc,
		Horizon:      trace.HorizonFromHours(*hours),
	}
	tr := trace.Generate(*seed, cfg)
	if err := tr.WriteCSV(os.Stdout); err != nil {
		log.Fatal(err)
	}
	if *fleet > 0 {
		a := tr.AssignMachines(*fleet, *seed)
		st := trace.FleetStats(tr.MachineLoadSeries(a, 0))
		fmt.Fprintf(os.Stderr, "fleet: %d machines, mean load %.2f tasks, p99 %.0f, idle fraction %.2f\n",
			a.Machines, st.MeanLoad, st.P99Load, st.IdleFraction)
	}
}

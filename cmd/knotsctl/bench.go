package main

import (
	"flag"
	"fmt"
	"io"
	"sort"
	"sync"
	"time"

	"kubeknots/internal/api"
	"kubeknots/internal/k8s"
	"kubeknots/internal/sim"
)

// benchCmd is the control-plane load harness: it fans out N concurrent
// clients that mix GETs over every read endpoint with periodic /advance
// posts, and reports per-operation latency percentiles. Under the server's
// single-flight advance, concurrent advances are expected to surface as 409
// conflicts; they are counted separately, not as failures.
func benchCmd(c *api.Client, args []string, w io.Writer) error {
	fs := flag.NewFlagSet("bench", flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	clients := fs.Int("clients", 8, "concurrent clients")
	requests := fs.Int("requests", 50, "requests per client")
	advanceEvery := fs.Int("advance-every", 10, "every Nth request per client is a POST /advance (0 = GETs only)")
	advanceMS := fs.Int64("advance-ms", 100, "simulated ms per advance")
	prime := fs.Int("prime", 0, "submit this many pods before measuring, so list endpoints carry real payloads")
	if err := fs.Parse(args); err != nil {
		return fmt.Errorf("usage: knotsctl bench [-clients N] [-requests N] [-advance-every N] [-advance-ms MS] [-prime N]: %w", err)
	}
	if len(fs.Args()) != 0 {
		return fmt.Errorf("bench takes no positional arguments")
	}
	if *clients <= 0 || *requests <= 0 || *advanceMS <= 0 || *advanceEvery < 0 || *prime < 0 {
		return fmt.Errorf("bench: -clients, -requests and -advance-ms must be positive; -advance-every and -prime non-negative")
	}

	for i := 0; i < *prime; i++ {
		m := k8s.Manifest{
			Name:     fmt.Sprintf("bench-%d", i),
			Workload: k8s.WorkloadRef{Kind: "rodinia", Name: "pathfinder"},
		}
		if _, err := c.SubmitManifest(m); err != nil && !api.IsConflict(err) {
			return fmt.Errorf("bench: prime pod %s: %w", m.Name, err)
		}
	}

	type sample struct {
		op  string
		d   time.Duration
		err error
	}
	results := make([][]sample, *clients)
	gets := []struct {
		op   string
		call func() error
	}{
		{"GET /pods", func() error { _, err := c.Pods(); return err }},
		{"GET /nodes", func() error { _, err := c.Nodes(); return err }},
		{"GET /qos", func() error { _, err := c.QoS(); return err }},
		{"GET /events", func() error { _, err := c.Events(""); return err }},
		{"GET /harvest", func() error { _, err := c.Harvest(); return err }},
	}

	start := time.Now()
	var wg sync.WaitGroup
	for ci := 0; ci < *clients; ci++ {
		wg.Add(1)
		go func(ci int) {
			defer wg.Done()
			out := make([]sample, 0, *requests)
			for i := 0; i < *requests; i++ {
				var s sample
				t0 := time.Now()
				if *advanceEvery > 0 && i%*advanceEvery == *advanceEvery-1 {
					_, _, _, err := c.Advance(sim.Time(*advanceMS))
					s = sample{op: "POST /advance", err: err}
				} else {
					g := gets[(ci+i)%len(gets)]
					s = sample{op: g.op, err: g.call()}
				}
				s.d = time.Since(t0)
				out = append(out, s)
			}
			results[ci] = out
		}(ci)
	}
	wg.Wait()
	wall := time.Since(start)

	byOp := map[string][]time.Duration{}
	conflicts := map[string]int{}
	hardErrs := map[string]int{}
	var firstErr error
	total, failed := 0, 0
	for _, rs := range results {
		for _, s := range rs {
			total++
			switch {
			case s.err == nil:
				byOp[s.op] = append(byOp[s.op], s.d)
			case api.IsConflict(s.err):
				conflicts[s.op]++
			default:
				hardErrs[s.op]++
				failed++
				if firstErr == nil {
					firstErr = s.err
				}
			}
		}
	}

	fmt.Fprintf(w, "bench: %d clients x %d requests in %v (%.1f req/s)\n",
		*clients, *requests, wall.Round(time.Millisecond), float64(total)/wall.Seconds())
	ops := make([]string, 0, len(byOp))
	seen := map[string]bool{}
	for _, m := range []map[string]int{conflicts, hardErrs} {
		for op := range m {
			if !seen[op] {
				seen[op] = true
				ops = append(ops, op)
			}
		}
	}
	for op := range byOp {
		if !seen[op] {
			seen[op] = true
			ops = append(ops, op)
		}
	}
	sort.Strings(ops)
	fmt.Fprintf(w, "%-14s %6s %5s %5s %10s %10s %10s %10s\n",
		"OP", "OK", "409", "ERR", "P50", "P90", "P99", "MAX")
	for _, op := range ops {
		ds := byOp[op]
		sort.Slice(ds, func(i, j int) bool { return ds[i] < ds[j] })
		fmt.Fprintf(w, "%-14s %6d %5d %5d %10v %10v %10v %10v\n",
			op, len(ds), conflicts[op], hardErrs[op],
			percentile(ds, 50), percentile(ds, 90), percentile(ds, 99), percentile(ds, 100))
	}
	if failed > 0 {
		return fmt.Errorf("bench: %d/%d requests failed (first: %v)", failed, total, firstErr)
	}
	return nil
}

// percentile returns the q-th percentile of an ascending-sorted slice,
// rounded for display; zero when there were no successful samples.
func percentile(sorted []time.Duration, q int) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := (q*len(sorted) + 99) / 100
	if i < 1 {
		i = 1
	}
	if i > len(sorted) {
		i = len(sorted)
	}
	d := sorted[i-1]
	switch {
	case d >= time.Second:
		return d.Round(time.Millisecond)
	case d >= time.Millisecond:
		return d.Round(10 * time.Microsecond)
	default:
		return d.Round(time.Microsecond)
	}
}

package main

import (
	"bytes"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"kubeknots/internal/api"
	"kubeknots/internal/k8s"
	"kubeknots/internal/persist"
	"kubeknots/internal/scheduler"
	"kubeknots/internal/sim"
)

// buildStateDir drives a persisted in-process apiserver through a small
// scenario and returns its state dir: a snapshot (snapshot-every 2 with 4
// commands) plus a WAL tail — exactly what `knotsctl state` operates on.
func buildStateDir(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	boot := persist.Bootstrap{Kind: "apiserver", Seed: 1, Nodes: 2, Scheduler: "pp"}
	orch, _, err := persist.Rebuild(boot, &scheduler.PP{})
	if err != nil {
		t.Fatal(err)
	}
	srv := api.NewServer(orch)
	mgr, err := persist.Open(dir, boot, persist.WithSnapshotEvery(2))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := srv.Recover(mgr); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	c := api.NewClient(ts.URL)
	for _, n := range []string{"s1", "s2", "s3"} {
		if _, err := c.SubmitManifest(k8s.Manifest{
			Name:     n,
			Workload: k8s.WorkloadRef{Kind: "rodinia", Name: "pathfinder"},
		}); err != nil {
			t.Fatal(err)
		}
	}
	if _, _, _, err := c.Advance(5 * sim.Second); err != nil {
		t.Fatal(err)
	}
	// Close without a final snapshot: leave the post-snapshot commands in
	// the WAL so inspect/verify/compact all have a tail to work with.
	if err := mgr.Close(); err != nil {
		t.Fatal(err)
	}
	return dir
}

func runState(t *testing.T, args ...string) (string, string, int) {
	t.Helper()
	var stdout, stderr bytes.Buffer
	code := run(append([]string{"state"}, args...), &stdout, &stderr)
	return stdout.String(), stderr.String(), code
}

func TestStateInspectVerifyCompact(t *testing.T) {
	dir := buildStateDir(t)

	out, errOut, code := runState(t, "inspect", dir)
	if code != 0 {
		t.Fatalf("inspect exit %d: %s", code, errOut)
	}
	if !strings.Contains(out, "kind=apiserver") || !strings.Contains(out, "scheduler=pp") {
		t.Fatalf("inspect output:\n%s", out)
	}
	if !strings.Contains(out, "wal:") || !strings.Contains(out, "(clean)") {
		t.Fatalf("inspect did not report the WAL:\n%s", out)
	}

	out, errOut, code = runState(t, "verify", dir)
	if code != 0 {
		t.Fatalf("verify exit %d: %s", code, errOut)
	}
	if !strings.Contains(out, "verified:") {
		t.Fatalf("verify output:\n%s", out)
	}

	out, errOut, code = runState(t, "compact", dir)
	if code != 0 {
		t.Fatalf("compact exit %d: %s", code, errOut)
	}
	if !strings.Contains(out, "compacted: snapshot now holds 4 commands") {
		t.Fatalf("compact output:\n%s", out)
	}

	// After compaction the WAL is empty and verify still passes over the
	// folded snapshot.
	out, _, code = runState(t, "inspect", dir)
	if code != 0 || !strings.Contains(out, "wal: 0 records") || !strings.Contains(out, "commands=4") {
		t.Fatalf("post-compact inspect (exit %d):\n%s", code, out)
	}
	if out, errOut, code = runState(t, "verify", dir); code != 0 {
		t.Fatalf("post-compact verify exit %d: %s%s", code, out, errOut)
	}
}

func TestStateVerifyDetectsTampering(t *testing.T) {
	dir := buildStateDir(t)
	path := filepath.Join(dir, "snapshot.kks")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0x01
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	// CRC damage surfaces at load time for both verbs; inspect degrades to
	// a CORRUPT line instead of failing.
	if _, errOut, code := runState(t, "verify", dir); code == 0 || !strings.Contains(errOut, "CRC mismatch") {
		t.Fatalf("verify over corrupt snapshot: exit %d, stderr %q", code, errOut)
	}
	out, _, code := runState(t, "inspect", dir)
	if code != 0 || !strings.Contains(out, "CORRUPT") {
		t.Fatalf("inspect over corrupt snapshot (exit %d):\n%s", code, out)
	}
}

func TestStateUsageAndErrors(t *testing.T) {
	if _, _, code := runState(t, "inspect"); code == 0 {
		t.Fatal("missing dir accepted")
	}
	if _, _, code := runState(t, "bogus", t.TempDir()); code == 0 {
		t.Fatal("unknown verb accepted")
	}
	if _, _, code := runState(t, "inspect", filepath.Join(t.TempDir(), "nope")); code == 0 {
		t.Fatal("nonexistent dir accepted")
	}
	if out, _, code := runState(t, "inspect", t.TempDir()); code != 0 || !strings.Contains(out, "empty state dir") {
		t.Fatalf("empty dir (exit %d): %s", code, out)
	}
	if _, errOut, code := runState(t, "verify", t.TempDir()); code == 0 || !strings.Contains(errOut, "no snapshot") {
		t.Fatalf("verify on empty dir: exit %d, %q", code, errOut)
	}
}

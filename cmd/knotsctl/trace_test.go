package main

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"kubeknots/internal/buildinfo"
	"kubeknots/internal/obs/span"
)

var updateTrace = flag.Bool("update", false, "regenerate the trace golden files")

// e2eSpansPath is the committed span file from the kubeknots E2E golden run;
// `knotsctl trace` views over it are themselves pinned by goldens here.
const e2eSpansPath = "../kubeknots/testdata/e2e_spans.golden.jsonl"

// pinBuild pins the reported build identity so golden output does not embed
// the live toolchain version.
func pinBuild(t *testing.T) {
	t.Helper()
	restore := buildinfo.Set(buildinfo.Info{
		Module: "kubeknots", Version: "(devel)", GoVersion: "go-test",
	})
	t.Cleanup(restore)
}

// runTrace invokes the full CLI path (`knotsctl trace ...`).
func runTrace(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	var stdout, stderr bytes.Buffer
	code := run(append([]string{"trace"}, args...), &stdout, &stderr)
	return code, stdout.String(), stderr.String()
}

// checkGolden compares got against the committed golden, regenerating it
// under -update.
func checkGolden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *updateTrace {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("%s updated", path)
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run `go test ./cmd/knotsctl -run TestTrace -update` to create golden files)", err)
	}
	if string(want) != got {
		t.Errorf("%s diverged from golden:\n--- want ---\n%s\n--- got ---\n%s", path, want, got)
	}
}

func TestTraceCriticalPathGolden(t *testing.T) {
	pinBuild(t)
	code, out, errOut := runTrace(t, "--critical-path", e2eSpansPath)
	if code != 0 {
		t.Fatalf("exit = %d, stderr:\n%s", code, errOut)
	}
	checkGolden(t, "trace_critical.golden.txt", out)
}

func TestTraceSummaryGolden(t *testing.T) {
	pinBuild(t)
	code, out, errOut := runTrace(t, "--summary", e2eSpansPath)
	if code != 0 {
		t.Fatalf("exit = %d, stderr:\n%s", code, errOut)
	}
	if !strings.Contains(out, "go-test") {
		t.Fatalf("summary header should carry the build identity:\n%s", out)
	}
	checkGolden(t, "trace_summary.golden.txt", out)
}

func TestTraceDefaultsToSummary(t *testing.T) {
	pinBuild(t)
	_, plain, _ := runTrace(t, e2eSpansPath)
	_, summary, _ := runTrace(t, "--summary", e2eSpansPath)
	if plain != summary {
		t.Error("bare `knotsctl trace <file>` should print the summary view")
	}
}

func TestTraceSlowest(t *testing.T) {
	pinBuild(t)
	code, out, errOut := runTrace(t, "--slowest", "3", e2eSpansPath)
	if code != 0 {
		t.Fatalf("exit = %d, stderr:\n%s", code, errOut)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 { // header + 3 pods
		t.Fatalf("want header + 3 rows, got %d lines:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[0], "TOTAL(ms)") {
		t.Fatalf("missing header: %q", lines[0])
	}
}

func TestTracePodView(t *testing.T) {
	pinBuild(t)
	// Pod names repeat across the golden's runs, so the lookup must be
	// qualified — and the unqualified form must fail loudly.
	code, _, errOut := runTrace(t, "--pod", "leukocyte-15", e2eSpansPath)
	if code == 0 || !strings.Contains(errOut, "ambiguous") {
		t.Fatalf("unqualified ambiguous pod: code=%d stderr=%q", code, errOut)
	}
	key := "fig9/App-Mix-1/PP/seed=3/leukocyte-15"
	code, out, errOut := runTrace(t, "--pod", key, e2eSpansPath)
	if code != 0 {
		t.Fatalf("exit = %d, stderr:\n%s", code, errOut)
	}
	for _, want := range []string{span.RootName + " " + key, span.QueueWaitName, span.BindName, span.ExecName, "outcome=succeeded"} {
		if !strings.Contains(out, want) {
			t.Errorf("pod view missing %q:\n%s", want, out)
		}
	}
}

func TestTraceErrors(t *testing.T) {
	if code, _, errOut := runTrace(t); code == 0 || !strings.Contains(errOut, "usage") {
		t.Errorf("no file: code=%d stderr=%q", code, errOut)
	}
	if code, _, _ := runTrace(t, filepath.Join(t.TempDir(), "missing.jsonl")); code != 1 {
		t.Errorf("missing file: code=%d", code)
	}
	bad := filepath.Join(t.TempDir(), "bad.jsonl")
	if err := os.WriteFile(bad, []byte("not json\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if code, _, errOut := runTrace(t, bad); code != 1 || !strings.Contains(errOut, "line 1") {
		t.Errorf("bad file: code=%d stderr=%q", code, errOut)
	}
	empty := filepath.Join(t.TempDir(), "empty.jsonl")
	if err := os.WriteFile(empty, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	if code, _, errOut := runTrace(t, empty); code != 1 || !strings.Contains(errOut, "no spans") {
		t.Errorf("empty file: code=%d stderr=%q", code, errOut)
	}
	if code, _, errOut := runTrace(t, "--pod", "nope", e2eSpansPath); code != 1 || !strings.Contains(errOut, "no trace") {
		t.Errorf("unknown pod: code=%d stderr=%q", code, errOut)
	}
}

func TestVersionFlag(t *testing.T) {
	pinBuild(t)
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-version"}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit = %d, stderr: %s", code, stderr.String())
	}
	if got := stdout.String(); !strings.Contains(got, "knotsctl kubeknots (devel) (go-test)") {
		t.Fatalf("-version output: %q", got)
	}
}

package main

import (
	"bytes"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"kubeknots/internal/api"
	"kubeknots/internal/cluster"
	"kubeknots/internal/harvest"
	"kubeknots/internal/k8s"
	"kubeknots/internal/scheduler"
	"kubeknots/internal/sim"
)

// newTestServer starts an in-process apiserver over a two-node cluster
// under the PP scheduler — the same stack cmd/apiserver runs.
func newTestServer(t *testing.T) *httptest.Server {
	t.Helper()
	eng := sim.NewEngine(1)
	cfg := cluster.DefaultConfig()
	cfg.Nodes = 2
	cl := cluster.New(cfg)
	orch := k8s.NewOrchestrator(eng, cl, &scheduler.PP{}, k8s.Config{})
	ts := httptest.NewServer(api.NewServer(orch).Handler())
	t.Cleanup(ts.Close)
	return ts
}

// newHarvestTestServer is newTestServer with a harvest controller attached,
// the stack cmd/apiserver runs under a non-empty -harvest spec.
func newHarvestTestServer(t *testing.T, cfg harvest.Config) *httptest.Server {
	t.Helper()
	eng := sim.NewEngine(1)
	ccfg := cluster.DefaultConfig()
	ccfg.Nodes = 2
	cl := cluster.New(ccfg)
	orch := k8s.NewOrchestrator(eng, cl, &scheduler.PP{}, k8s.Config{})
	srv := api.NewServer(orch)
	hctl := harvest.New(orch, cfg)
	orch.Start()
	hctl.Start()
	srv.SetHarvest(hctl)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return ts
}

// ctl invokes the CLI against the given server and captures its streams.
func ctl(t *testing.T, url string, args ...string) (int, string, string) {
	t.Helper()
	var stdout, stderr bytes.Buffer
	code := run(append([]string{"-server", url}, args...), &stdout, &stderr)
	return code, stdout.String(), stderr.String()
}

func writeManifest(t *testing.T, body string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "pod.json")
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestKnotsctlLifecycle walks the kubectl-style flow end to end: apply a
// manifest, list pods, advance the simulation past the job's runtime, and
// inspect the pod, nodes, QoS, and event log.
func TestKnotsctlLifecycle(t *testing.T) {
	ts := newTestServer(t)
	manifest := writeManifest(t, `{"name":"job-1","workload":{"kind":"rodinia","name":"pathfinder"}}`)

	code, out, errOut := ctl(t, ts.URL, "apply", manifest)
	if code != 0 {
		t.Fatalf("apply: exit %d, stderr %q", code, errOut)
	}
	if !strings.Contains(out, "pod/job-1 created") {
		t.Fatalf("apply output %q", out)
	}

	code, out, _ = ctl(t, ts.URL, "get", "pods")
	if code != 0 || !strings.Contains(out, "NAME") || !strings.Contains(out, "job-1") {
		t.Fatalf("get pods: exit %d, output %q", code, out)
	}

	// Advance 40 simulated seconds: pathfinder (~19 s) must complete.
	code, out, errOut = ctl(t, ts.URL, "advance", "40s")
	if code != 0 {
		t.Fatalf("advance: exit %d, stderr %q", code, errOut)
	}
	if !strings.Contains(out, "pending=0") || !strings.Contains(out, "completed=1") {
		t.Fatalf("advance output %q", out)
	}

	code, out, _ = ctl(t, ts.URL, "get", "pod", "job-1")
	if code != 0 || !strings.Contains(out, "name: job-1") || !strings.Contains(out, "phase: Succeeded") {
		t.Fatalf("get pod: exit %d, output %q", code, out)
	}

	code, out, _ = ctl(t, ts.URL, "get", "nodes")
	if code != 0 || !strings.Contains(out, "GPU") || !strings.Contains(out, "MODEL") {
		t.Fatalf("get nodes: exit %d, output %q", code, out)
	}

	code, out, _ = ctl(t, ts.URL, "get", "qos")
	if code != 0 || !strings.Contains(out, "queries:") {
		t.Fatalf("get qos: exit %d, output %q", code, out)
	}

	code, out, _ = ctl(t, ts.URL, "events", "job-1")
	if code != 0 || !strings.Contains(out, "job-1") {
		t.Fatalf("events: exit %d, output %q", code, out)
	}
}

// TestKnotsctlErrorPaths pins the exit codes: 2 for usage errors (bad
// flags, missing or unknown commands), 1 for command failures (bad inputs,
// unreachable server).
func TestKnotsctlErrorPaths(t *testing.T) {
	ts := newTestServer(t)
	manifest := writeManifest(t, `{"name":"job-1","workload":{"kind":"rodinia","name":"pathfinder"}}`)
	badManifest := writeManifest(t, `{"name":"job-2","workload":{"kind":"rodinia","name":"no-such-app"}}`)

	cases := []struct {
		name     string
		args     []string
		wantCode int
		wantErr  string
	}{
		{"no-command", nil, 2, "usage: knotsctl"},
		{"unknown-command", []string{"destroy"}, 2, "usage: knotsctl"},
		{"unknown-flag", []string{"-bogus", "get", "pods"}, 2, "flag provided but not defined"},
		{"apply-no-file", []string{"apply"}, 1, "usage: knotsctl apply"},
		{"apply-missing-file", []string{"apply", "does-not-exist.json"}, 1, "no such file"},
		{"apply-bad-workload", []string{"apply", badManifest}, 1, "unknown rodinia application"},
		{"get-nothing", []string{"get"}, 1, "usage: knotsctl get"},
		{"get-unknown-resource", []string{"get", "volcanoes"}, 1, `unknown resource "volcanoes"`},
		{"get-pod-no-name", []string{"get", "pod"}, 1, "usage: knotsctl get pod"},
		{"get-pod-unknown", []string{"get", "pod", "ghost"}, 1, ""},
		{"advance-no-duration", []string{"advance"}, 1, "usage: knotsctl advance"},
		{"advance-bad-duration", []string{"advance", "soon"}, 1, ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var stdout, stderr bytes.Buffer
			code := run(append([]string{"-server", ts.URL}, tc.args...), &stdout, &stderr)
			if code != tc.wantCode {
				t.Fatalf("exit = %d, want %d (stderr: %s)", code, tc.wantCode, stderr.String())
			}
			if tc.wantErr != "" && !strings.Contains(stderr.String(), tc.wantErr) {
				t.Fatalf("stderr %q missing %q", stderr.String(), tc.wantErr)
			}
		})
	}

	// A dead server must fail with exit 1, not hang or panic.
	if code, _, errOut := ctl(t, "http://127.0.0.1:1", "get", "pods"); code != 1 || errOut == "" {
		t.Fatalf("dead server: exit %d, stderr %q", code, errOut)
	}
	_ = manifest
}

// TestKnotsctlHarvestDisabled pins the no-controller output: the command
// must succeed and say so rather than fail or print an empty table.
func TestKnotsctlHarvestDisabled(t *testing.T) {
	ts := newTestServer(t)
	code, out, errOut := ctl(t, ts.URL, "harvest")
	if code != 0 {
		t.Fatalf("harvest: exit %d, stderr %q", code, errOut)
	}
	if strings.TrimSpace(out) != "harvest: disabled" {
		t.Fatalf("harvest output %q", out)
	}
	if code, _, errOut := ctl(t, ts.URL, "harvest", "extra"); code != 1 || !strings.Contains(errOut, "usage: knotsctl harvest") {
		t.Fatalf("extra args: exit %d, stderr %q", code, errOut)
	}
}

// TestKnotsctlHarvestEnabled walks the harvested-pod flow end to end: apply
// a harvested manifest, advance past its runtime, and read the controller's
// watermark state and counters back through the CLI.
func TestKnotsctlHarvestEnabled(t *testing.T) {
	ts := newHarvestTestServer(t, harvest.Config{Enabled: true, Checkpoint: true})
	manifest := writeManifest(t, `{"name":"scav-1","harvested":true,"workload":{"kind":"rodinia","name":"pathfinder"}}`)

	if code, out, errOut := ctl(t, ts.URL, "apply", manifest); code != 0 || !strings.Contains(out, "pod/scav-1 created") {
		t.Fatalf("apply: exit %d, out %q, stderr %q", code, out, errOut)
	}
	if code, out, errOut := ctl(t, ts.URL, "advance", "40s"); code != 0 || !strings.Contains(out, "completed=1") {
		t.Fatalf("advance: exit %d, out %q, stderr %q", code, out, errOut)
	}

	code, out, _ := ctl(t, ts.URL, "get", "pod", "scav-1")
	if code != 0 || !strings.Contains(out, "priority: -100") || !strings.Contains(out, "phase: Succeeded") {
		t.Fatalf("get pod: exit %d, output %q", code, out)
	}

	code, out, errOut := ctl(t, ts.URL, "harvest")
	if code != 0 {
		t.Fatalf("harvest: exit %d, stderr %q", code, errOut)
	}
	for _, want := range []string{
		"harvest: enabled (checkpoint-resume, watermark 85%)",
		"admissions: 1 (resumed 0)",
		"preemptions: 0 watermark, 0 drain",
		"WATERMARK", // per-node table header
		"n0/g0",
		"n1/g0",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("harvest output missing %q:\n%s", want, out)
		}
	}
}

// TestKnotsctlApplyThenQoSAfterInference drives a latency-critical manifest
// through the same path, covering the inference workload kind.
func TestKnotsctlApplyThenQoSAfterInference(t *testing.T) {
	ts := newTestServer(t)
	manifest := writeManifest(t,
		`{"name":"serve-1","workload":{"kind":"inference","name":"pos","batch":1}}`)
	if code, out, errOut := ctl(t, ts.URL, "apply", manifest); code != 0 || !strings.Contains(out, "pod/serve-1 created") {
		t.Fatalf("apply: exit %d, out %q, stderr %q", code, out, errOut)
	}
	if code, _, errOut := ctl(t, ts.URL, "advance", "10s"); code != 0 {
		t.Fatalf("advance: exit %d, stderr %q", code, errOut)
	}
	code, out, _ := ctl(t, ts.URL, "get", "qos")
	if code != 0 || !strings.Contains(out, "queries: 1") {
		t.Fatalf("get qos: exit %d, output %q", code, out)
	}
}

package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	"kubeknots/internal/buildinfo"
	"kubeknots/internal/obs/span"
)

// traceCmd implements `knotsctl trace`: offline queries over a span JSONL
// file written by `kubeknots -spans-out`. It needs no apiserver — the span
// file is the complete causal record of a run.
//
//	knotsctl trace --summary spans.jsonl        counts, outcomes, latency breakdown
//	knotsctl trace --critical-path spans.jsonl  dominant segment per pod + slowest chains
//	knotsctl trace --slowest 10 spans.jsonl     highest-latency pods
//	knotsctl trace --pod <name> spans.jsonl     one pod's full trace tree
func traceCmd(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("knotsctl trace", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		pod      = fs.String("pod", "", "print one pod's full trace (name or run/name)")
		slowest  = fs.Int("slowest", 0, "print the N highest-latency pods")
		critical = fs.Bool("critical-path", false, "print per-pod critical-path extraction")
		summary  = fs.Bool("summary", false, "print span counts, outcomes, and per-scheduler latency percentiles")
	)
	fs.Usage = func() {
		fmt.Fprintln(stderr, "usage: knotsctl trace [--pod P] [--slowest N] [--critical-path] [--summary] <spans.jsonl>")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		fs.Usage()
		return fmt.Errorf("trace wants exactly one span file")
	}
	f, err := os.Open(fs.Arg(0))
	if err != nil {
		return err
	}
	spans, err := span.ReadJSONL(f)
	f.Close()
	if err != nil {
		return err
	}
	if len(spans) == 0 {
		return fmt.Errorf("%s: no spans", fs.Arg(0))
	}
	ix := span.NewIndex(spans)

	// Default view when no selector is given.
	if !*summary && !*critical && *slowest == 0 && *pod == "" {
		*summary = true
	}
	if *summary {
		printSummary(stdout, spans, ix)
	}
	if *critical {
		printCriticalPath(stdout, ix)
	}
	if *slowest > 0 {
		printSlowest(stdout, ix, *slowest)
	}
	if *pod != "" {
		tr, err := ix.Lookup(*pod)
		if err != nil {
			return err
		}
		printPod(stdout, tr)
	}
	return nil
}

func ms(us int64) float64 { return float64(us) / 1000 }

// attrString renders attributes deterministically as sorted k=v pairs.
func attrString(attrs map[string]string) string {
	if len(attrs) == 0 {
		return ""
	}
	keys := make([]string, 0, len(attrs))
	for k := range attrs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, len(keys))
	for i, k := range keys {
		parts[i] = k + "=" + attrs[k]
	}
	return " " + strings.Join(parts, " ")
}

func printSummary(w io.Writer, spans []span.Span, ix *span.Index) {
	runs := map[string]bool{}
	for i := range spans {
		runs[spans[i].Run] = true
	}
	fmt.Fprintf(w, "# knotsctl trace — %s\n", buildinfo.Get().String())
	fmt.Fprintf(w, "spans: %d across %d pods (%d runs)\n", len(spans), len(ix.Traces), len(runs))
	fmt.Fprintln(w, "span counts:")
	for _, c := range span.SpanCounts(spans) {
		fmt.Fprintf(w, "  %-18s %6d\n", c.Name, c.Count)
	}
	fmt.Fprintln(w, "outcomes:")
	for _, c := range ix.OutcomeCounts() {
		fmt.Fprintf(w, "  %-18s %6d\n", c.Name, c.Count)
	}
	bds := ix.BreakdownByScheduler()
	if len(bds) == 0 {
		return
	}
	fmt.Fprintln(w, "latency breakdown (completed pods, ms p50/p90/p99):")
	fmt.Fprintf(w, "  %-10s %5s  %-24s %-24s %-24s\n", "SCHEDULER", "PODS", "QUEUE-WAIT", "EXEC", "SUBMIT-TO-COMPLETE")
	p3 := func(p [3]float64) string {
		return fmt.Sprintf("%.1f/%.1f/%.1f", p[0]/1000, p[1]/1000, p[2]/1000)
	}
	for _, b := range bds {
		fmt.Fprintf(w, "  %-10s %5d  %-24s %-24s %-24s\n",
			b.Scheduler, b.Pods, p3(b.QueueP), p3(b.ExecP), p3(b.TotalP))
	}
}

func printCriticalPath(w io.Writer, ix *span.Index) {
	fmt.Fprintln(w, "critical path (dominant segment per pod):")
	for _, c := range ix.DominantSegments() {
		fmt.Fprintf(w, "  %-18s %6d\n", c.Name, c.Count)
	}
	fmt.Fprintln(w, "slowest critical paths:")
	fmt.Fprintf(w, "  %-40s %10s  %-16s %10s %6s\n", "POD", "TOTAL(ms)", "DOMINANT", "DOM(ms)", "SHARE")
	for _, tr := range ix.Slowest(10) {
		steps, dom := tr.CriticalPath()
		if dom < 0 {
			continue
		}
		total := tr.TotalUS()
		share := 0.0
		if total > 0 {
			share = float64(steps[dom].DurUS) / float64(total) * 100
		}
		fmt.Fprintf(w, "  %-40s %10.1f  %-16s %10.1f %5.0f%%\n",
			tr.Key(), ms(total), steps[dom].Name, ms(steps[dom].DurUS), share)
	}
}

func printSlowest(w io.Writer, ix *span.Index, n int) {
	fmt.Fprintf(w, "%-40s %10s %10s %10s  %-10s %s\n",
		"POD", "TOTAL(ms)", "QUEUE(ms)", "EXEC(ms)", "OUTCOME", "SCHEDULER")
	for _, tr := range ix.Slowest(n) {
		fmt.Fprintf(w, "%-40s %10.1f %10.1f %10.1f  %-10s %s\n",
			tr.Key(), ms(tr.TotalUS()),
			ms(tr.SegmentTotalUS(span.QueueWaitName)),
			ms(tr.SegmentTotalUS(span.ExecName)),
			tr.Outcome(), tr.Scheduler())
	}
}

func printPod(w io.Writer, tr *span.PodTrace) {
	if tr.Root != nil {
		r := tr.Root
		fmt.Fprintf(w, "%s %s [%.1fms → %.1fms] %.1fms%s\n",
			r.Name, tr.Key(), ms(r.StartUS), ms(r.EndUS), ms(r.DurUS()), attrString(r.Attrs))
	} else {
		fmt.Fprintf(w, "pod %s (no root span; trace truncated)\n", tr.Key())
	}
	// Interleave segments and evals in time order.
	all := make([]*span.Span, 0, len(tr.Segments)+len(tr.Evals))
	all = append(all, tr.Segments...)
	all = append(all, tr.Evals...)
	sort.SliceStable(all, func(i, j int) bool {
		if all[i].StartUS != all[j].StartUS {
			return all[i].StartUS < all[j].StartUS
		}
		return all[i].Seq < all[j].Seq
	})
	for _, s := range all {
		if s.DurUS() > 0 {
			fmt.Fprintf(w, "  %-18s [%.1fms → %.1fms] %.1fms%s\n",
				s.Name, ms(s.StartUS), ms(s.EndUS), ms(s.DurUS()), attrString(s.Attrs))
		} else {
			fmt.Fprintf(w, "  %-18s @%.1fms%s\n", s.Name, ms(s.StartUS), attrString(s.Attrs))
		}
		for _, ev := range s.Events {
			fmt.Fprintf(w, "    · %s @%.1fms%s\n", ev.Name, ms(ev.AtUS), attrString(ev.Attrs))
		}
	}
}

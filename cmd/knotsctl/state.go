package main

import (
	"fmt"
	"io"
	"os"
	"path/filepath"

	"kubeknots/internal/experiments"
	"kubeknots/internal/harvest"
	"kubeknots/internal/k8s"
	"kubeknots/internal/persist"
	"kubeknots/internal/sim"
)

// stateCmd implements the offline `knotsctl state` subcommands. They read a
// -state-dir written by the apiserver (snapshot + WAL), knotsd (snapshot
// only), or a kubeknots -crash-at run (per-run snapshots) — no server
// connection required.
func stateCmd(args []string, stdout, stderr io.Writer) error {
	if len(args) != 2 {
		return fmt.Errorf("usage: knotsctl state inspect|verify|compact <state-dir>")
	}
	verb, dir := args[0], args[1]
	if _, err := os.Stat(dir); err != nil {
		return fmt.Errorf("state dir: %w", err)
	}
	switch verb {
	case "inspect":
		return stateInspect(dir, stdout)
	case "verify":
		return stateVerify(dir, stdout)
	case "compact":
		return stateCompact(dir, stdout)
	}
	return fmt.Errorf("unknown state command %q (want inspect, verify, or compact)", verb)
}

// stateInspect prints what the dir holds: the control-plane snapshot, the
// WAL tail, and any per-run experiment snapshots — each with its bootstrap
// recipe, clock, and record counts. CRC or format damage surfaces as the
// load error for the affected file.
func stateInspect(dir string, w io.Writer) error {
	store, err := persist.OpenStore(dir)
	if err != nil {
		return err
	}
	found := false
	snap, err := store.LoadSnapshot()
	if err != nil {
		fmt.Fprintf(w, "snapshot: CORRUPT: %v\n", err)
		found = true
	} else if snap != nil {
		found = true
		printSnapshot(w, "snapshot", snap)
	}
	if recs, torn, err := store.LoadWAL(); err != nil {
		fmt.Fprintf(w, "wal: CORRUPT: %v\n", err)
		found = true
	} else if recs != nil || fileExists(filepath.Join(dir, "wal.kkw")) {
		found = true
		state := "clean"
		if torn {
			state = "torn tail dropped"
		}
		fmt.Fprintf(w, "wal: %d records (%s)\n", len(recs), state)
	}
	runs, err := store.RunSnapshots()
	if err != nil {
		return err
	}
	for _, path := range runs {
		found = true
		rsnap, lerr := persist.LoadSnapshotFile(path)
		if lerr != nil {
			fmt.Fprintf(w, "%s: CORRUPT: %v\n", filepath.Base(path), lerr)
			continue
		}
		printSnapshot(w, filepath.Base(path), rsnap)
	}
	if !found {
		fmt.Fprintln(w, "empty state dir")
	}
	return nil
}

func printSnapshot(w io.Writer, label string, snap *persist.Snapshot) {
	b := snap.Boot
	fmt.Fprintf(w, "%s: kind=%s seed=%d nodes=%d scheduler=%s", label, b.Kind, b.Seed, b.Nodes, b.Scheduler)
	if b.Hetero {
		fmt.Fprint(w, " hetero")
	}
	if b.HarvestSpec != "" {
		fmt.Fprintf(w, " harvest=%q", b.HarvestSpec)
	}
	if b.RunKey != "" {
		fmt.Fprintf(w, " run=%q", b.RunKey)
	}
	fmt.Fprintf(w, "\n  clock=%v commands=%d pods=%d events=%d series=%d\n",
		sim.Time(snap.State.ClockMS), len(snap.Cmds), len(snap.State.Pods),
		len(snap.State.Events), len(snap.State.Series))
}

// stateVerify replays the snapshot's command history through a fresh
// control plane and byte-compares the result against the recorded state —
// the same determinism check recovery performs, runnable offline.
func stateVerify(dir string, w io.Writer) error {
	store, err := persist.OpenStore(dir)
	if err != nil {
		return err
	}
	snap, err := store.LoadSnapshot()
	if err != nil {
		return err
	}
	if snap == nil {
		return fmt.Errorf("no snapshot in %s", dir)
	}
	if snap.Boot.Kind != "apiserver" {
		return fmt.Errorf("verify supports apiserver state (this dir is %q); its snapshot has no replayable command history", snap.Boot.Kind)
	}
	o, hctl, err := replaySnapshot(snap)
	if err != nil {
		return err
	}
	got := persist.CaptureState(o, hctl)
	if err := persist.VerifyState(got, snap.State); err != nil {
		return fmt.Errorf("verification FAILED: %w", err)
	}
	recs, torn, err := store.LoadWAL()
	if err != nil {
		return err
	}
	applied, skipped := 0, 0
	for _, rec := range recs {
		// Records the snapshot already absorbed (crash between snapshot
		// rename and WAL reset) are identified by sequence number and
		// must not be re-applied.
		if rec.Seq <= uint64(len(snap.Cmds)) {
			skipped++
			continue
		}
		if _, err := persist.ApplyRecord(o, rec); err != nil {
			return fmt.Errorf("wal record seq %d does not apply: %w", rec.Seq, err)
		}
		applied++
	}
	tail := ""
	if torn {
		tail = " (torn tail dropped)"
	}
	if skipped > 0 {
		tail += fmt.Sprintf(" (%d already absorbed by the snapshot)", skipped)
	}
	fmt.Fprintf(w, "verified: %d snapshot commands byte-identical, %d wal records apply%s\n",
		len(snap.Cmds), applied, tail)
	return nil
}

// stateCompact folds the WAL tail into the snapshot: replay everything,
// write one fresh snapshot holding the full history, then truncate the WAL.
// The next recovery replays from the snapshot alone.
func stateCompact(dir string, w io.Writer) error {
	store, err := persist.OpenStore(dir)
	if err != nil {
		return err
	}
	snap, err := store.LoadSnapshot()
	if err != nil {
		return err
	}
	if snap == nil {
		return fmt.Errorf("no snapshot in %s", dir)
	}
	if snap.Boot.Kind != "apiserver" {
		return fmt.Errorf("compact supports apiserver state (this dir is %q)", snap.Boot.Kind)
	}
	tail, torn, err := store.LoadWAL()
	if err != nil {
		return err
	}
	if torn {
		fmt.Fprintln(w, "warning: dropping torn wal tail")
	}
	// Fold only records past the snapshot's absorbed count — a stale WAL
	// left by a crash between snapshot rename and reset would otherwise
	// double its commands into the compacted history.
	cmds := append([]persist.Record(nil), snap.Cmds...)
	folded := 0
	for _, rec := range tail {
		if rec.Seq <= uint64(len(snap.Cmds)) {
			continue
		}
		cmds = append(cmds, rec)
		folded++
	}
	full := &persist.Snapshot{Boot: snap.Boot, Cmds: cmds}
	o, hctl, err := replaySnapshot(full)
	if err != nil {
		return err
	}
	full.State = persist.CaptureState(o, hctl)
	if _, err := store.WriteSnapshot(full); err != nil {
		return err
	}
	wal, err := store.AppendWAL(1, uint64(len(full.Cmds)))
	if err != nil {
		return err
	}
	defer wal.Close()
	if err := wal.Reset(); err != nil {
		return err
	}
	fmt.Fprintf(w, "compacted: snapshot now holds %d commands (folded %d wal records), wal reset\n",
		len(full.Cmds), folded)
	return nil
}

// replaySnapshot rebuilds a control plane from an apiserver snapshot's
// bootstrap and runs its command history forward.
func replaySnapshot(snap *persist.Snapshot) (*k8s.Orchestrator, *harvest.Controller, error) {
	sched, err := experiments.SchedulerByName(snap.Boot.Scheduler)
	if err != nil {
		return nil, nil, err
	}
	return persist.Replay(snap.Boot, sched, snap.Cmds)
}

func fileExists(path string) bool {
	_, err := os.Stat(path)
	return err == nil
}

// Command knotsctl is the kubectl-style client for the Kube-Knots
// apiserver (cmd/apiserver):
//
//	knotsctl [-server http://localhost:8088] apply manifest.json
//	knotsctl get pods
//	knotsctl get pod <name>
//	knotsctl get nodes
//	knotsctl get qos
//	knotsctl events [pod]
//	knotsctl harvest
//	knotsctl advance 60s
//	knotsctl bench -clients 16 -requests 200
//	knotsctl trace [--pod P|--slowest N|--critical-path|--summary] spans.jsonl
//	knotsctl state inspect|verify|compact <state-dir>
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"kubeknots/internal/api"
	"kubeknots/internal/buildinfo"
	"kubeknots/internal/k8s"
	"kubeknots/internal/sim"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run executes one CLI invocation and returns its exit code. main is a thin
// wrapper so tests can drive the full command path against an in-process
// apiserver.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("knotsctl", flag.ContinueOnError)
	fs.SetOutput(stderr)
	server := fs.String("server", "http://localhost:8088", "apiserver base URL")
	version := fs.Bool("version", false, "print build information and exit")
	fs.Usage = func() { usage(stderr) }
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *version {
		fmt.Fprintln(stdout, "knotsctl", buildinfo.Get().String())
		return 0
	}
	rest := fs.Args()
	if len(rest) == 0 {
		usage(stderr)
		return 2
	}
	// trace and state are offline: they read a span file or a state dir,
	// not the apiserver.
	if rest[0] == "trace" {
		if err := traceCmd(rest[1:], stdout, stderr); err != nil {
			fmt.Fprintln(stderr, "knotsctl:", err)
			return 1
		}
		return 0
	}
	if rest[0] == "state" {
		if err := stateCmd(rest[1:], stdout, stderr); err != nil {
			fmt.Fprintln(stderr, "knotsctl:", err)
			return 1
		}
		return 0
	}
	c := api.NewClient(*server,
		api.WithTimeout(api.DefaultTimeout),
		api.WithRetries(2),
		api.WithUserAgent("knotsctl/"+buildinfo.Get().Version))
	var err error
	switch rest[0] {
	case "apply":
		err = apply(c, rest[1:], stdout)
	case "get":
		err = get(c, rest[1:], stdout)
	case "events":
		err = events(c, rest[1:], stdout)
	case "harvest":
		err = harvestState(c, rest[1:], stdout)
	case "advance":
		err = advance(c, rest[1:], stdout)
	case "bench":
		err = benchCmd(c, rest[1:], stdout)
	default:
		usage(stderr)
		return 2
	}
	if err != nil {
		fmt.Fprintln(stderr, "knotsctl:", err)
		return 1
	}
	return 0
}

func apply(c *api.Client, args []string, w io.Writer) error {
	if len(args) != 1 {
		return fmt.Errorf("usage: knotsctl apply <manifest.json>")
	}
	data, err := os.ReadFile(args[0])
	if err != nil {
		return err
	}
	m, err := k8s.ParseManifest(data)
	if err != nil {
		return err
	}
	st, err := c.SubmitManifest(m)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "pod/%s created (%s, %s)\n", st.Name, st.Class, st.Phase)
	return nil
}

func get(c *api.Client, args []string, w io.Writer) error {
	if len(args) == 0 {
		return fmt.Errorf("usage: knotsctl get pods|pod <name>|nodes|qos")
	}
	switch args[0] {
	case "pods":
		pods, err := c.Pods()
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%-24s %-18s %-10s %8s %8s\n", "NAME", "CLASS", "PHASE", "CRASHES", "AGE(s)")
		for _, p := range pods {
			fmt.Fprintf(w, "%-24s %-18s %-10s %8d %8.1f\n",
				p.Name, p.Class, p.Phase, p.Crashes, float64(p.SubmitMS)/1000)
		}
		return nil
	case "pod":
		if len(args) != 2 {
			return fmt.Errorf("usage: knotsctl get pod <name>")
		}
		p, err := c.Pod(args[1])
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "name: %s\nclass: %s\nphase: %s\npriority: %d\nsubmit: %dms\nscheduled: %dms\nfinished: %dms\ncrashes: %d\n",
			p.Name, p.Class, p.Phase, p.Priority, p.SubmitMS, p.ScheduleMS, p.FinishMS, p.Crashes)
		return nil
	case "nodes":
		nodes, err := c.Nodes()
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%-8s %-6s %7s %10s %10s %7s %6s %6s\n",
			"GPU", "MODEL", "SM%", "USED(MB)", "FREE(MB)", "POWER", "PODS", "STATE")
		for _, n := range nodes {
			state := "awake"
			if n.Asleep {
				state = "sleep"
			}
			fmt.Fprintf(w, "%-8s %-6s %7.1f %10.0f %10.0f %6.0fW %6d %6s\n",
				n.GPU, n.Model, n.SMPct, n.MemUsedMB, n.FreeMB, n.PowerW, n.Containers, state)
		}
		return nil
	case "qos":
		q, err := c.QoS()
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "queries: %d\nviolations: %d (%.1f per kilo)\nmean latency: %dms\np99 latency: %dms\n",
			q.Queries, q.Violations, q.PerKilo, q.MeanMS, q.P99MS)
		return nil
	}
	return fmt.Errorf("unknown resource %q", args[0])
}

func events(c *api.Client, args []string, w io.Writer) error {
	pod := ""
	if len(args) > 0 {
		pod = args[0]
	}
	evs, err := c.Events(pod)
	if err != nil {
		return err
	}
	for _, e := range evs {
		where := ""
		if e.Node != "" {
			where = " on " + e.Node
		}
		detail := ""
		if e.Detail != "" {
			detail = " (" + e.Detail + ")"
		}
		fmt.Fprintf(w, "%8.1fs %-10s %s%s%s\n", float64(e.AtMS)/1000, e.Type, e.Pod, where, detail)
	}
	return nil
}

func harvestState(c *api.Client, args []string, w io.Writer) error {
	if len(args) != 0 {
		return fmt.Errorf("usage: knotsctl harvest")
	}
	h, err := c.Harvest()
	if err != nil {
		return err
	}
	if !h.Enabled {
		fmt.Fprintln(w, "harvest: disabled")
		return nil
	}
	mode := "evict"
	if h.Checkpoint {
		mode = "checkpoint-resume"
	}
	fmt.Fprintf(w, "harvest: enabled (%s, watermark %.0f%%)\n", mode, h.Watermark*100)
	fmt.Fprintf(w, "admissions: %d (resumed %d)\npreemptions: %d watermark, %d drain\n",
		h.Counters.Admissions, h.Counters.Migrations,
		h.Counters.PreemptionsWatermark, h.Counters.PreemptionsDrain)
	if len(h.Nodes) == 0 {
		return nil
	}
	fmt.Fprintf(w, "%-8s %10s %12s %12s %6s %6s %s\n",
		"GPU", "USED(MB)", "FORECAST(MB)", "WATERMARK", "PODS", "OVER", "STATE")
	for _, n := range h.Nodes {
		over, state := "-", "fresh"
		if n.Over {
			over = "over"
		}
		if n.Stale {
			state = "stale"
		}
		fmt.Fprintf(w, "%-8s %10.0f %12.0f %12.0f %6d %6s %s\n",
			n.GPU, n.UsedMB, n.ForecastMB, n.WatermarkMB, n.Harvested, over, state)
	}
	return nil
}

func advance(c *api.Client, args []string, w io.Writer) error {
	if len(args) != 1 {
		return fmt.Errorf("usage: knotsctl advance <duration>")
	}
	d, err := time.ParseDuration(args[0])
	if err != nil {
		return err
	}
	now, pending, completed, err := c.Advance(sim.Time(d.Milliseconds()))
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "now=%v pending=%d completed=%d\n", now, pending, completed)
	return nil
}

func usage(w io.Writer) {
	fmt.Fprintln(w, `usage: knotsctl [-server URL] <command>
commands:
  apply <manifest.json>     submit a pod
  get pods|pod <n>|nodes|qos
  events [pod]
  harvest                   harvest-controller watermark state and counters
  advance <duration>        run the simulation forward (e.g. 60s)
  bench [flags]             load-test the apiserver: concurrent clients mixing
                            GETs with advances, latency percentiles per op
                            (-clients, -requests, -advance-every, -advance-ms, -prime)
  trace [flags] <spans.jsonl>
                            query a span file from kubeknots -spans-out
                            (--pod, --slowest N, --critical-path, --summary)
  state inspect|verify|compact <dir>
                            offline tools for a -state-dir: list its
                            snapshots and WAL, byte-verify a replay against
                            the recorded state, or fold the WAL into a
                            fresh snapshot`)
}

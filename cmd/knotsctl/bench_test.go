package main

import (
	"strings"
	"testing"
)

// TestBenchAgainstInProcessServer drives the full load harness against an
// in-process apiserver: concurrent GETs mixed with advances, where advance
// conflicts (409 under the server's single-flight rule) must count as
// conflicts, not failures.
func TestBenchAgainstInProcessServer(t *testing.T) {
	ts := newTestServer(t)
	code, out, errs := ctl(t, ts.URL, "bench",
		"-clients", "4", "-requests", "25", "-advance-every", "5", "-advance-ms", "50", "-prime", "10")
	if code != 0 {
		t.Fatalf("bench exit %d, stderr: %s", code, errs)
	}
	for _, want := range []string{"bench: 4 clients x 25 requests", "P50", "P99", "POST /advance", "GET /pods"} {
		if !strings.Contains(out, want) {
			t.Fatalf("bench output missing %q:\n%s", want, out)
		}
	}
	// 4×25 requests with one advance per 5: no hard failures allowed.
	if strings.Contains(out, "failed") {
		t.Fatalf("bench reported failures:\n%s", out)
	}
}

func TestBenchGetsOnly(t *testing.T) {
	ts := newTestServer(t)
	code, out, errs := ctl(t, ts.URL, "bench",
		"-clients", "2", "-requests", "10", "-advance-every", "0")
	if code != 0 {
		t.Fatalf("bench exit %d, stderr: %s", code, errs)
	}
	if strings.Contains(out, "POST /advance") {
		t.Fatalf("-advance-every 0 still advanced:\n%s", out)
	}
}

func TestBenchFlagAndTargetErrors(t *testing.T) {
	ts := newTestServer(t)
	if code, _, _ := ctl(t, ts.URL, "bench", "-clients", "0"); code != 1 {
		t.Fatalf("bad -clients: exit %d, want 1", code)
	}
	if code, _, _ := ctl(t, ts.URL, "bench", "extra-arg"); code != 1 {
		t.Fatalf("positional arg: exit %d, want 1", code)
	}
	// Unreachable server: every request fails, the command must fail too.
	code, _, errs := ctl(t, "http://127.0.0.1:1", "bench", "-clients", "1", "-requests", "2", "-advance-every", "0")
	if code != 1 || !strings.Contains(errs, "requests failed") {
		t.Fatalf("dead server: exit %d, stderr: %s", code, errs)
	}
}

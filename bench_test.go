package kubeknots

// The benchmark harness regenerates every table and figure of the paper's
// evaluation — one testing.B benchmark per artifact — and reports the
// headline scalar of each as a custom metric, so `go test -bench=. -benchmem`
// doubles as a reproduction sweep. Cluster benchmarks run a one-minute load
// window and the DL benchmarks use the reduced simulator scale to keep the
// sweep tractable; `go run ./cmd/kubeknots <fig>` prints the paper-scale
// rows.

import (
	"strconv"
	"strings"
	"testing"

	"kubeknots/internal/cluster"
	"kubeknots/internal/dlsim"
	"kubeknots/internal/experiments"
	"kubeknots/internal/forecast"
	"kubeknots/internal/harvest"
	"kubeknots/internal/k8s"
	"kubeknots/internal/knots"
	"kubeknots/internal/metrics"
	"kubeknots/internal/scheduler"
	"kubeknots/internal/sim"
	tracepkg "kubeknots/internal/trace"
	"kubeknots/internal/tsdb"
	"kubeknots/internal/workloads"
)

// benchClusterCfg is the reduced-horizon configuration for benchmarks.
func benchClusterCfg() experiments.ClusterConfig {
	return experiments.ClusterConfig{Horizon: sim.Minute}
}

func tableCell(b *testing.B, t *experiments.Table, row, col int) float64 {
	b.Helper()
	v, err := strconv.ParseFloat(strings.TrimSuffix(t.Rows[row][col], "x"), 64)
	if err != nil {
		b.Fatalf("cell [%d][%d] = %q: %v", row, col, t.Rows[row][col], err)
	}
	return v
}

func BenchmarkFig1(b *testing.B) {
	var t *experiments.Table
	for i := 0; i < b.N; i++ {
		t = experiments.Fig1()
	}
	b.ReportMetric(tableCell(b, t, 4, 1), "GPU-EE@50%")
}

func BenchmarkFig2(b *testing.B) {
	cfg := tracepkg.Small()
	var corr float64
	for i := 0; i < b.N; i++ {
		t := experiments.Fig2c(1, cfg)
		corr = tableCell(b, t, 0, 2)
		experiments.Fig2a(1, cfg)
		experiments.Fig2b(1, cfg)
	}
	b.ReportMetric(corr, "batch-core-mem-rho")
}

func BenchmarkFig3(b *testing.B) {
	var rows int
	for i := 0; i < b.N; i++ {
		rows = len(experiments.Fig3(0).Rows)
	}
	b.ReportMetric(float64(rows), "samples")
}

func BenchmarkFig4(b *testing.B) {
	var t *experiments.Table
	for i := 0; i < b.N; i++ {
		t = experiments.Fig4()
	}
	b.ReportMetric(tableCell(b, t, 0, 1), "TF-earmark-%")
}

func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if len(experiments.Table1().Rows) != 3 {
			b.Fatal("table1 must have 3 mixes")
		}
	}
}

func BenchmarkFig6(b *testing.B) {
	var t *experiments.Table
	for i := 0; i < b.N; i++ {
		var err error
		t, err = experiments.Fig6(1, benchClusterCfg())
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(tableCell(b, t, 0, 1), "node1-p50-util")
}

func BenchmarkFig7(b *testing.B) {
	var t *experiments.Table
	for i := 0; i < b.N; i++ {
		t = experiments.Fig7(benchClusterCfg())
	}
	b.ReportMetric(tableCell(b, t, 9, 3), "mix3-max-COV")
}

func BenchmarkFig8(b *testing.B) {
	var t *experiments.Table
	for i := 0; i < b.N; i++ {
		var err error
		t, err = experiments.Fig8(1, benchClusterCfg())
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(tableCell(b, t, 0, 1), "node1-p50-util")
}

func BenchmarkFig9(b *testing.B) {
	var t *experiments.Table
	for i := 0; i < b.N; i++ {
		t = experiments.Fig9(benchClusterCfg())
	}
	// PP's cluster-wide p90 on App-Mix-1 — the headline utilization gain.
	b.ReportMetric(tableCell(b, t, 0, 3), "PP-mix1-p90-util")
}

func BenchmarkFig10a(b *testing.B) {
	var t *experiments.Table
	for i := 0; i < b.N; i++ {
		t = experiments.Fig10a(benchClusterCfg())
	}
	b.ReportMetric(tableCell(b, t, 0, 3), "PP-mix1-viol-per-kilo")
	b.ReportMetric(tableCell(b, t, 0, 1), "ResAg-mix1-viol-per-kilo")
}

func BenchmarkFig10b(b *testing.B) {
	var t *experiments.Table
	for i := 0; i < b.N; i++ {
		t = experiments.Fig10b(42)
	}
	b.ReportMetric(tableCell(b, t, 4, 1), "ARIMA-acc@1ms")
}

func BenchmarkFig11a(b *testing.B) {
	var t *experiments.Table
	for i := 0; i < b.N; i++ {
		t = experiments.Fig11a(benchClusterCfg())
	}
	b.ReportMetric(tableCell(b, t, 0, 3), "PP-mix1-energy-vs-uniform")
}

func BenchmarkFig11b(b *testing.B) {
	var t *experiments.Table
	for i := 0; i < b.N; i++ {
		var err error
		t, err = experiments.Fig11b(benchClusterCfg())
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(tableCell(b, t, 0, 2), "pairCOV-n1-n2")
}

func BenchmarkFig12a(b *testing.B) {
	var t *experiments.Table
	for i := 0; i < b.N; i++ {
		t = experiments.Fig12a(dlsim.Small())
	}
	b.ReportMetric(tableCell(b, t, 4, 4), "CBPPP-JCT-p50-hours")
}

func BenchmarkFig12b(b *testing.B) {
	var t *experiments.Table
	for i := 0; i < b.N; i++ {
		t = experiments.Fig12b(dlsim.Small())
	}
	b.ReportMetric(tableCell(b, t, 0, 4), "CBPPP-mix1-viol-per-hr")
}

func BenchmarkTable4(b *testing.B) {
	var t *experiments.Table
	for i := 0; i < b.N; i++ {
		t = experiments.Table4(dlsim.Small())
	}
	b.ReportMetric(tableCell(b, t, 0, 1), "ResAg-avg-JCT-ratio")
	b.ReportMetric(tableCell(b, t, 2, 1), "Tiresias-avg-JCT-ratio")
}

func BenchmarkAblationCorrThreshold(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.AblationCorrThreshold(benchClusterCfg(), 0.3, 0.5, 0.7)
	}
}

func BenchmarkAblationResizePercentile(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.AblationResizePercentile(benchClusterCfg(), 50, 80, 100)
	}
}

func BenchmarkAblationHeartbeat(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.AblationHeartbeat(benchClusterCfg(), sim.Second, 10*sim.Millisecond)
	}
}

func BenchmarkAblationForecaster(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.AblationForecaster(benchClusterCfg())
	}
}

// Micro-benchmarks on the hot paths.

func BenchmarkSpearman(b *testing.B) {
	x := workloads.RodiniaProfile(workloads.KMeans).MemSeries(sim.Second)
	y := workloads.RodiniaProfile(workloads.LUD).MemSeries(sim.Second)
	if len(x) > len(y) {
		x = x[:len(y)]
	} else {
		y = y[:len(x)]
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := metrics.SpearmanRho(x, y); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAR1Forecast(b *testing.B) {
	series := workloads.RodiniaProfile(workloads.KMeans).MemSeries(100 * sim.Millisecond)
	var m forecast.AR1
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := m.Fit(series); err != nil {
			b.Fatal(err)
		}
		m.Predict()
	}
}

func BenchmarkPPScheduleRound(b *testing.B) {
	mix, _ := workloads.MixByID(1)
	// One full short run exercises snapshotting + admission repeatedly.
	for i := 0; i < b.N; i++ {
		experiments.RunCluster(&scheduler.PP{}, mix, experiments.ClusterConfig{
			Horizon: 15 * sim.Second,
		})
	}
}

func BenchmarkAblationLearnedProfiles(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.AblationLearnedProfiles(benchClusterCfg())
	}
}

func BenchmarkAblationSLOFraction(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.AblationSLOFraction(benchClusterCfg(), 0.8, 1.0)
	}
}

func BenchmarkCBPScheduleRound(b *testing.B) {
	mix, _ := workloads.MixByID(1)
	for i := 0; i < b.N; i++ {
		experiments.RunCluster(&scheduler.CBP{}, mix, experiments.ClusterConfig{
			Horizon: 15 * sim.Second,
		})
	}
}

func BenchmarkAggregatorSnapshot(b *testing.B) {
	// Worst case for the incremental aggregator: every node is sampled
	// between snapshots, so every per-node cache is dirty and rebuilt.
	cl := cluster.New(cluster.DefaultConfig())
	mon := knots.NewMonitor(cl, 0)
	// Warm every series with a window of heartbeats so Snapshot walks real
	// data, then measure the per-heartbeat sample + extraction.
	now := sim.Time(0)
	for hb := 0; hb < 100; hb++ {
		now += 100 * sim.Millisecond
		mon.Sample(now)
	}
	agg := knots.NewAggregator(mon)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		now += 100 * sim.Millisecond
		mon.Sample(now)
		agg.Snapshot(now)
	}
}

func BenchmarkAggregatorSnapshotReplay(b *testing.B) {
	// Best case: nothing changed since the last snapshot, so every node is
	// served from its cache (the same-instant replay the scheduler hits
	// when it snapshots more often than the monitor samples).
	cl := cluster.New(cluster.DefaultConfig())
	mon := knots.NewMonitor(cl, 0)
	now := sim.Time(0)
	for hb := 0; hb < 100; hb++ {
		now += 100 * sim.Millisecond
		mon.Sample(now)
	}
	agg := knots.NewAggregator(mon)
	agg.Snapshot(now)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		agg.Snapshot(now)
	}
}

func BenchmarkAggregatorSnapshotDirtyFew(b *testing.B) {
	// O(dirty-nodes) case: a 32-node cluster where only node 0 reports each
	// heartbeat (the rest are down, their databases empty), so every
	// snapshot rebuilds one node and replays 31 from cache.
	cfg := cluster.DefaultConfig()
	cfg.Nodes = 32
	cl := cluster.New(cfg)
	mon := knots.NewMonitor(cl, 0)
	for n := 1; n < cfg.Nodes; n++ {
		mon.SetNodeDown(n, true)
	}
	now := sim.Time(0)
	for hb := 0; hb < 100; hb++ {
		now += 100 * sim.Millisecond
		mon.Sample(now)
	}
	agg := knots.NewAggregator(mon)
	agg.Snapshot(now)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		now += 100 * sim.Millisecond
		mon.Sample(now)
		agg.Snapshot(now)
	}
}

// benchShardSnapshot builds a 512-GPU snapshot with residents on every
// third device and a pending queue, the fixture for the sharded-round
// benchmarks (Schedule never mutates the cluster, so iterations repeat the
// identical round).
func benchShardSnapshot(gpus, pods int) (*knots.Snapshot, []*k8s.Pod) {
	cfg := cluster.DefaultConfig()
	cfg.GPUsPerNode = 8
	cfg.Nodes = gpus / cfg.GPUsPerNode
	cl := cluster.New(cfg)
	mon := knots.NewMonitor(cl, 0)
	o := k8s.NewOrchestrator(sim.NewEngine(2), cl, scheduler.Uniform{}, k8s.Config{})
	for i, g := range cl.GPUs() {
		if i%3 == 0 {
			p := workloads.RodiniaProfile(workloads.KMeans)
			c := &cluster.Container{ID: "r" + strconv.Itoa(i), Class: p.Class, Inst: p.NewInstance(nil)}
			if err := g.Place(0, c, 500+float64(i%32)*10); err != nil {
				panic(err)
			}
		}
	}
	var now sim.Time
	for i := 0; i < 30; i++ {
		now += 100 * sim.Millisecond
		cl.Tick(now, 100*sim.Millisecond)
		mon.Sample(now)
	}
	snap := knots.NewAggregator(mon).Snapshot(now)
	names := workloads.RodiniaNames()
	queue := make([]*k8s.Pod, 0, pods)
	for i := 0; i < pods; i++ {
		queue = append(queue, o.NewPod(workloads.RodiniaProfile(names[i%len(names)]), nil))
	}
	return snap, queue
}

func benchShardedRound(b *testing.B, shards int) {
	snap, queue := benchShardSnapshot(512, 16)
	var p scheduler.PP
	p.SetShards(shards)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p.Schedule(snap.At, queue, snap)
	}
}

func BenchmarkShardedScheduleRound1(b *testing.B) { benchShardedRound(b, 1) }
func BenchmarkShardedScheduleRound8(b *testing.B) { benchShardedRound(b, 8) }

func BenchmarkTSDBWindowRead(b *testing.B) {
	db := tsdb.New(0)
	for i := 0; i < 5000; i++ {
		db.Append("m", sim.Time(i)*sim.Millisecond, float64(i%97))
	}
	var vals []float64
	var pts []tsdb.Point
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		vals = db.ValuesInto(vals[:0], "m", 0, 5*sim.Second)
		pts = db.DownsampleInto(pts[:0], "m", 0, 5*sim.Second, 100*sim.Millisecond)
	}
	if len(vals) == 0 || len(pts) == 0 {
		b.Fatal("benchmark read nothing")
	}
}

// BenchmarkHarvestTick measures one 100 ms control interval of a
// harvest-enabled cluster: the controller's snapshot walk, watermark checks,
// and opportunistic admission of the pending harvested queue, on top of the
// ambient heartbeat and scheduling machinery the tick interleaves with.
func BenchmarkHarvestTick(b *testing.B) {
	eng := sim.NewEngine(1)
	cl := cluster.New(cluster.DefaultConfig())
	o := k8s.NewOrchestrator(eng, cl, &scheduler.PP{}, k8s.Config{})
	h := harvest.New(o, harvest.Config{Enabled: true, Checkpoint: true})
	o.Start()
	h.Start()
	// A standing queue of harvested batch pods keeps the admission path
	// busy: the headroom ceiling caps residency well below 64, so the
	// controller re-evaluates a non-empty queue every tick.
	prof := workloads.RodiniaProfile(workloads.Leukocyte)
	for i := 0; i < 64; i++ {
		p := o.NewPod(prof, nil)
		p.Priority = k8s.PriorityHarvested
		p.Harvested = true
		o.Submit(0, p)
	}
	now := 2 * sim.Second
	o.Run(now) // warm: monitors report, first admissions land
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		now += 100 * sim.Millisecond
		o.Run(now)
	}
	if h.Counters().Admissions == 0 {
		b.Fatal("benchmark admitted nothing")
	}
}

// Package kubeknots is a from-scratch Go reproduction of "Kube-Knots:
// Resource Harvesting through Dynamic Container Orchestration in GPU-based
// Datacenters" (Thinakaran et al., IEEE CLUSTER 2019).
//
// The package is the public facade over the full system:
//
//   - a simulated GPU datacenter (internal/cluster) whose devices time-share
//     SMs, space-share memory, crash pods on capacity violations, and draw
//     power linearly with utilization;
//   - a miniature Kubernetes-like orchestrator (internal/k8s) with pods,
//     pending queue, binding, and crash-relaunch;
//   - the Knots telemetry layer (internal/knots): per-node five-metric NVML
//     sampling into time-series stores plus a head-node aggregator;
//   - the paper's schedulers (internal/scheduler): Uniform, Res-Ag, CBP and
//     PP (Algorithm 1);
//   - the discrete-time DL-cluster simulator (internal/dlsim) with
//     Gandiva-like, Tiresias-like, Res-Ag and CBP+PP policies;
//   - experiment harnesses (internal/experiments) regenerating every table
//     and figure of the paper's evaluation.
//
// Quick start:
//
//	mix, _ := kubeknots.MixByID(1)
//	run := kubeknots.Run(kubeknots.NewPP(), mix, kubeknots.RunConfig{})
//	fmt.Println(run.QoS.PerKilo(), run.ClusterUtilPercentiles())
package kubeknots

import (
	"kubeknots/internal/dlsim"
	"kubeknots/internal/experiments"
	"kubeknots/internal/k8s"
	"kubeknots/internal/scheduler"
	"kubeknots/internal/sim"
	"kubeknots/internal/workloads"
)

// Time is simulated time in milliseconds (see sim.Time).
type Time = sim.Time

// Time units.
const (
	Millisecond = sim.Millisecond
	Second      = sim.Second
	Minute      = sim.Minute
	Hour        = sim.Hour
)

// Scheduler is a cluster-level GPU placement policy.
type Scheduler = k8s.Scheduler

// AppMix is one of the paper's Table I workload mixes.
type AppMix = workloads.AppMix

// RunConfig parameterizes a cluster replay (zero values take the paper's
// defaults: ten nodes, five simulated minutes).
type RunConfig = experiments.ClusterConfig

// ClusterRun is the outcome of a cluster replay; it embeds the orchestrator
// for QoS, utilization, energy and crash inspection.
type ClusterRun = experiments.ClusterRun

// NewUniform returns the Kubernetes-default exclusive-GPU scheduler.
func NewUniform() Scheduler { return scheduler.Uniform{} }

// NewResAg returns the resource-agnostic GPU-sharing baseline.
func NewResAg() Scheduler { return &scheduler.ResAg{} }

// NewCBP returns the Correlation-Based Prediction scheduler with the
// paper's defaults (ρ < 0.5 gate, p80 resize).
func NewCBP() Scheduler { return &scheduler.CBP{} }

// NewPP returns the Peak Prediction scheduler (CBP + autocorrelation-gated
// ARIMA forecasting, Algorithm 1).
func NewPP() Scheduler { return &scheduler.PP{} }

// MixByID returns App-Mix-1..3 from Table I.
func MixByID(id int) (AppMix, error) { return workloads.MixByID(id) }

// AppMixes returns all three Table I mixes.
func AppMixes() []AppMix { return workloads.AppMixes() }

// Run replays an app-mix against a simulated ten-node GPU cluster under the
// given scheduler.
func Run(s Scheduler, mix AppMix, cfg RunConfig) *ClusterRun {
	return experiments.RunCluster(s, mix, cfg)
}

// DLConfig parameterizes the Section V-C deep-learning cluster simulation.
type DLConfig = dlsim.Config

// DLPolicy is a DL-cluster scheduling discipline.
type DLPolicy = dlsim.Policy

// DLResult is the outcome of one DL simulation.
type DLResult = dlsim.Result

// NewKubeKnotsDL returns the CBP+PP policy for the DL simulator.
func NewKubeKnotsDL() DLPolicy { return &dlsim.KubeKnotsPolicy{} }

// NewGandiva returns the Gandiva-like time-slicing comparator.
func NewGandiva() DLPolicy { return &dlsim.GandivaPolicy{} }

// NewTiresias returns the Tiresias-like two-queue LAS comparator.
func NewTiresias() DLPolicy { return &dlsim.TiresiasPolicy{} }

// NewResAgDL returns the request-driven DL baseline.
func NewResAgDL() DLPolicy { return dlsim.ResAgPolicy{} }

// RunDL executes the DL-cluster simulation (use dlsim defaults via
// DLConfig{}: 520 training jobs + 1400 inference tasks on 32×8 GPUs).
func RunDL(p DLPolicy, cfg DLConfig) *DLResult { return dlsim.Run(p, cfg) }

// Table is a printable experiment result.
type Table = experiments.Table
